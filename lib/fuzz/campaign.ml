module Rng = Sp_util.Rng
module Bitset = Sp_util.Bitset
module Metrics = Sp_util.Metrics
module Pool = Sp_util.Pool
module Faults = Sp_util.Faults
module Trace = Sp_obs.Trace
module Tracer = Sp_obs.Tracer
module Timeseries = Sp_obs.Timeseries
module Events = Sp_obs.Events
module Kernel = Sp_kernel.Kernel
module Bug = Sp_kernel.Bug
module Prog = Sp_syzlang.Prog
module Parser = Sp_syzlang.Parser
module Accum = Sp_coverage.Accum
module Json = Sp_obs.Json

type config = {
  duration : float;
  seed : int;
  seed_corpus : Prog.t list;
  snapshot_every : float;
  attempt_repro : bool;
  target : int option;
}

let default_config =
  {
    duration = 86_400.0;
    seed = 0;
    seed_corpus = [];
    snapshot_every = 1200.0;
    attempt_repro = false;
    target = None;
  }

type snapshot = {
  s_time : float;
  s_blocks : int;
  s_edges : int;
  s_crashes : int;
  s_execs : int;
}

(* Telemetry sampler: one timeseries row per snapshot-grid point, fed
   from the same state the snapshot reads. Rows carry only virtual-clock
   and merged-state values, so the exported series inherits the
   executors' determinism contract — no wall clock, no scheduling. *)
type sampler = {
  sm_ts : Timeseries.t option;
  sm_extra : unit -> (string * float) list;
  mutable sm_prev_time : float;
  mutable sm_prev_execs : int;
}

let make_sampler ?timeseries ?(ts_extra = fun () -> []) () =
  { sm_ts = timeseries; sm_extra = ts_extra; sm_prev_time = 0.0;
    sm_prev_execs = 0 }

let sample_row sampler ~time ~blocks ~edges ~crashes ~execs ~corpus_size =
  match sampler.sm_ts with
  | None -> ()
  | Some ts ->
    let dt = time -. sampler.sm_prev_time in
    let execs_per_s =
      if dt > 0.0 then float_of_int (execs - sampler.sm_prev_execs) /. dt
      else 0.0
    in
    sampler.sm_prev_time <- time;
    sampler.sm_prev_execs <- execs;
    Timeseries.sample ts ~time
      ([
         ("blocks", float_of_int blocks);
         ("edges", float_of_int edges);
         ("execs", float_of_int execs);
         ("execs_per_s", execs_per_s);
         ("corpus", float_of_int corpus_size);
         ("crashes", float_of_int crashes);
       ]
      @ sampler.sm_extra ())

type report = {
  series : snapshot list;
  final_blocks : int;
  final_edges : int;
  crashes : Triage.found list;
  new_crashes : Triage.found list;
  known_crashes : Triage.found list;
  executions : int;
  corpus_size : int;
  target_hit_at : float option;
  origin_stats : (string * (int * int)) list;
      (* per proposal origin: executions, new edges discovered *)
  corpus : Corpus.t;
  covered_blocks : Sp_util.Bitset.t;
  metrics : Metrics.t;
}

(* ------------------------------------------------------------------ *)
(* Serialization helpers (snapshot documents and report fingerprints)   *)
(* ------------------------------------------------------------------ *)

let row_to_json s =
  Json.Obj
    [ ("time", Json.Num s.s_time);
      ("blocks", Json.Num (float_of_int s.s_blocks));
      ("edges", Json.Num (float_of_int s.s_edges));
      ("crashes", Json.Num (float_of_int s.s_crashes));
      ("execs", Json.Num (float_of_int s.s_execs))
    ]

let row_of_json j =
  let open Json.Decode in
  {
    s_time = num_field "time" j;
    s_blocks = int_field "blocks" j;
    s_edges = int_field "edges" j;
    s_crashes = int_field "crashes" j;
    s_execs = int_field "execs" j;
  }

let origin_stats_to_json stats =
  Json.Arr
    (List.map
       (fun (origin, (execs, new_edges)) ->
         Json.Obj
           [ ("origin", Json.Str origin);
             ("execs", Json.Num (float_of_int execs));
             ("new_edges", Json.Num (float_of_int new_edges))
           ])
       stats)

let origin_stats_of_json j =
  let open Json.Decode in
  match j with
  | Json.Arr items ->
    List.map
      (fun it ->
        (str_field "origin" it, (int_field "execs" it, int_field "new_edges" it)))
      items
  | _ -> Json.Decode.error "origin_stats: expected array"

let opt_time_to_json = function None -> Json.Null | Some t -> Json.Num t

let opt_time_of_json name j =
  match Json.Decode.field name j with
  | Json.Null -> None
  | Json.Num t -> Some t
  | _ -> Json.Decode.error "field %S: expected number or null" name

let report_json r =
  Json.Obj
    [ ("series", Json.Arr (List.map row_to_json r.series));
      ("final_blocks", Json.Num (float_of_int r.final_blocks));
      ("final_edges", Json.Num (float_of_int r.final_edges));
      ("crashes", Json.Arr (List.map Triage.found_to_json r.crashes));
      ("new_crashes", Json.Arr (List.map Triage.found_to_json r.new_crashes));
      ( "known_crashes",
        Json.Arr (List.map Triage.found_to_json r.known_crashes) );
      ("executions", Json.Num (float_of_int r.executions));
      ("corpus_size", Json.Num (float_of_int r.corpus_size));
      ("target_hit_at", opt_time_to_json r.target_hit_at);
      ("origin_stats", origin_stats_to_json r.origin_stats);
      ("corpus", Snapshot.corpus_to_json r.corpus);
      ("covered_blocks", Accum.bitset_to_json r.covered_blocks)
    ]

type state = {
  vm : Vm.t;
  clock : Clock.t;
  rng : Rng.t;
  corpus : Corpus.t;
  accum : Accum.t;
  triage : Triage.t;
  config : config;
  metrics : Metrics.t;
  tracer : Tracer.t;
  sampler : sampler;
  mutable series_rev : snapshot list;
  mutable next_snapshot : float;
  mutable crash_count : int;
  mutable target_hit_at : float option;
  origin_stats : (string, int * int) Hashtbl.t;
  executed : (int, Prog.t list) Hashtbl.t;
}

let take_snapshots st =
  while Clock.now st.clock >= st.next_snapshot do
    let s_blocks = Accum.blocks_covered st.accum in
    let s_edges = Accum.edges_covered st.accum in
    let s_execs = Vm.executions st.vm in
    st.series_rev <-
      {
        s_time = st.next_snapshot;
        s_blocks;
        s_edges;
        s_crashes = st.crash_count;
        s_execs;
      }
      :: st.series_rev;
    sample_row st.sampler ~time:st.next_snapshot ~blocks:s_blocks
      ~edges:s_edges ~crashes:st.crash_count ~execs:s_execs
      ~corpus_size:(Corpus.size st.corpus);
    Tracer.instant st.tracer "campaign.snapshot";
    Tracer.counter st.tracer "edges" (float_of_int s_edges);
    st.next_snapshot <- st.next_snapshot +. st.config.snapshot_every
  done

let check_target st =
  match st.config.target with
  | Some b when st.target_hit_at = None && Accum.mem_block st.accum b ->
    st.target_hit_at <- Some (Clock.now st.clock)
  | Some _ | None -> ()

(* The executed-set is keyed by hash but confirmed structurally, like the
   corpus: a collision must cost a redundant execution, not skip a
   never-run program. *)
let seen_executed st prog h =
  match Hashtbl.find_opt st.executed h with
  | None -> false
  | Some bucket -> List.exists (Prog.equal prog) bucket

let mark_executed st prog h =
  let bucket = Option.value ~default:[] (Hashtbl.find_opt st.executed h) in
  Hashtbl.replace st.executed h (prog :: bucket)

(* Ingest the VM scratch's last execution. The stamped views are only
   borrowed: novelty is judged with [Accum.add_stamped] directly on them,
   and bitsets are materialized only for the rare corpus admission.
   [scratch_crash] is read before [Triage.record], whose repro attempts
   re-execute (into the kernel's per-domain default scratch, not this
   VM's — the views stay valid regardless). *)
let ingest_raw ?(origin = "seed") st prog =
  let scratch = Vm.scratch st.vm in
  let crash = Kernel.scratch_crash scratch in
  let delta =
    Accum.add_stamped st.accum
      ~blocks:(Kernel.scratch_blocks scratch)
      ~edges:(Kernel.scratch_edges scratch)
  in
  (let execs, new_edges =
     Option.value ~default:(0, 0) (Hashtbl.find_opt st.origin_stats origin)
   in
   Hashtbl.replace st.origin_stats origin
     (execs + 1, new_edges + delta.Accum.new_edges));
  (* Crashing programs never enter the corpus: the VM died, and mutating
     them would mostly re-trigger the same crash (Syzkaller behaves the
     same way). *)
  if crash = None && (delta.Accum.new_blocks > 0 || delta.Accum.new_edges > 0)
  then
    if
      Corpus.add st.corpus
        {
          Corpus.prog;
          blocks = Kernel.scratch_blocks_bitset scratch;
          edges = Kernel.scratch_edges_bitset scratch;
          added_at = Clock.now st.clock;
        }
    then Metrics.incr st.metrics "campaign.corpus_adds";
  (match crash with
  | Some crash -> (
    match
      Triage.record ~attempt_repro:st.config.attempt_repro st.triage st.rng
        ~vm:st.vm ~now:(Clock.now st.clock) crash prog
    with
    | Some _ ->
      st.crash_count <- st.crash_count + 1;
      Metrics.incr st.metrics "campaign.crashes"
    | None -> ())
  | None -> ());
  check_target st;
  take_snapshots st

let finished st =
  Clock.now st.clock >= st.config.duration
  || (st.config.target <> None && st.target_hit_at <> None)

let run ?(trace = Trace.disabled) ?timeseries ?ts_extra vm
    (strategy : Strategy.t) config =
  Vm.set_throughput_factor vm strategy.Strategy.throughput_factor;
  let kernel = Vm.kernel vm in
  let metrics = Metrics.create () in
  Vm.set_metrics vm metrics;
  let tracer = Trace.tracer trace ~pid:0 ~name:"campaign" in
  Vm.set_tracer vm tracer;
  let dist_to_target =
    match config.target with
    | Some b -> Sp_cfg.Cfg.distances_to (Kernel.cfg kernel) b
    | None -> [||]
  in
  (* Directed mode: an entry's distance to the target is fixed once its
     coverage is known, so it is computed exactly once, on admission, and
     the corpus keeps the minimum tier indexed (no per-choice scan and no
     hash-keyed memo). *)
  let entry_distance (entry : Corpus.entry) =
    Bitset.fold
      (fun b acc -> min acc dist_to_target.(b))
      entry.Corpus.blocks max_int
  in
  let st =
    {
      vm;
      clock = Clock.create ();
      rng = Rng.create config.seed;
      corpus =
        Corpus.create
          ?distance:(if config.target = None then None else Some entry_distance)
          ();
      accum =
        Accum.create ~num_blocks:(Kernel.num_blocks kernel)
          ~num_edges:(Sp_cfg.Cfg.num_edges (Kernel.cfg kernel));
      triage = Triage.create kernel;
      config;
      metrics;
      tracer;
      sampler = make_sampler ?timeseries ?ts_extra ();
      series_rev = [];
      next_snapshot = config.snapshot_every;
      crash_count = 0;
      target_hit_at = None;
      origin_stats = Hashtbl.create 16;
      executed = Hashtbl.create 4096;
    }
  in
  (* Seed the corpus. *)
  List.iter
    (fun prog ->
      if not (finished st) then begin
        mark_executed st prog (Prog.hash prog);
        Vm.run_raw st.vm st.clock prog;
        ingest_raw st prog
      end)
    config.seed_corpus;
  (* Main loop. *)
  while (not (finished st)) && Corpus.size st.corpus > 0 do
    Metrics.incr st.metrics "campaign.iterations";
    let iter_start = Clock.now st.clock in
    let entry =
      match config.target with
      | Some _ -> Corpus.choose_directed st.rng st.corpus
      | None -> Corpus.choose st.rng st.corpus
    in
    let proposals =
      Metrics.time st.metrics "campaign.propose_cpu_s" (fun () ->
          strategy.Strategy.propose st.rng ~now:(Clock.now st.clock)
            ~covered:(Accum.blocks st.accum) st.corpus entry)
    in
    Metrics.incr ~by:(List.length proposals) st.metrics "campaign.proposals";
    List.iter
      (fun (p : Strategy.proposal) ->
        if not (finished st) then begin
          let h = Prog.hash p.Strategy.prog in
          if seen_executed st p.Strategy.prog h then begin
            Metrics.incr st.metrics "campaign.duplicates";
            Vm.charge_duplicate st.vm st.clock
          end
          else begin
            mark_executed st p.Strategy.prog h;
            Vm.run_raw st.vm st.clock p.Strategy.prog;
            ingest_raw ~origin:p.Strategy.origin st p.Strategy.prog
          end
        end)
      proposals;
    Metrics.observe st.metrics "campaign.iter_virtual_s"
      (Clock.now st.clock -. iter_start)
  done;
  (* Close the series at the end of the campaign. *)
  Clock.advance st.clock (Float.max 0.0 (config.duration -. Clock.now st.clock));
  take_snapshots st;
  let needs_final =
    match st.series_rev with
    | last :: _ -> last.s_time < config.duration
    | [] -> true
  in
  if needs_final then begin
    let s_blocks = Accum.blocks_covered st.accum in
    let s_edges = Accum.edges_covered st.accum in
    let s_execs = Vm.executions st.vm in
    st.series_rev <-
      { s_time = config.duration;
        s_blocks;
        s_edges;
        s_crashes = st.crash_count;
        s_execs }
      :: st.series_rev;
    sample_row st.sampler ~time:config.duration ~blocks:s_blocks
      ~edges:s_edges ~crashes:st.crash_count ~execs:s_execs
      ~corpus_size:(Corpus.size st.corpus)
  end;
  {
    series = List.rev st.series_rev;
    final_blocks = Accum.blocks_covered st.accum;
    final_edges = Accum.edges_covered st.accum;
    crashes = Triage.all_found st.triage;
    new_crashes = Triage.new_crashes st.triage;
    known_crashes = Triage.known_crashes st.triage;
    executions = Vm.executions st.vm;
    corpus_size = Corpus.size st.corpus;
    target_hit_at = st.target_hit_at;
    origin_stats =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) st.origin_stats []
      |> List.sort compare;
    corpus = st.corpus;
    (* the accumulator dies with the campaign, but the report escapes it:
       hand out a snapshot, not the live set *)
    covered_blocks = Accum.snapshot_blocks st.accum;
    metrics = st.metrics;
  }

(* ------------------------------------------------------------------ *)
(* Parallel executor: campaign instances                                *)
(* ------------------------------------------------------------------ *)

(* A parallel campaign is an [instance]: the merged global state plus the
   shard array, stepped one barrier slice at a time against a worker pool
   the caller owns. [run_parallel] drives one instance to completion over
   a private pool; the multi-tenant {!Scheduler} interleaves slices of
   many instances over one shared pool. Shards fuzz independently between
   snapshot barriers, against private copies of the barrier-frozen global
   corpus and accumulator; at each barrier the main domain folds every
   shard's epoch results into the global state in shard order
   (0..jobs-1). Each shard's epoch is a pure function of the frozen
   global snapshot and its own RNG stream, and the merge order is fixed,
   so the whole run is bit-for-bit reproducible given
   (config.seed, jobs) — thread scheduling (and, for the scheduler,
   slice interleaving) can change wall-clock time, never the report. *)

type aux = {
  aux_json : unit -> Json.t;
  aux_restore : Json.t -> unit;
}

type instance = {
  i_config : config;
  i_jobs : int;
  i_shards : Shard.t array;
  i_corpus : Corpus.t;
  i_accum : Accum.t;
  i_triage : Triage.t;
  i_metrics : Metrics.t;
  i_tracer : Tracer.t;  (* the instance's main-domain lane *)
  i_sampler : sampler;
  i_merge_rng : Rng.t;
  i_origin_stats : (string, int * int) Hashtbl.t;
  i_on_barrier : now:float -> unit;
  i_snapshot_dir : string option;
  i_aux : aux option;
  i_faults : Faults.t;
  i_events : Events.t;
  i_label : string option;
  i_fsite : string -> string;  (* site name, prefixed with the label *)
  mutable i_series_rev : snapshot list;
  mutable i_next_snapshot : float;
  mutable i_crash_count : int;
  mutable i_target_hit_at : float option;
  mutable i_barrier : int;
  mutable i_stopped : bool;
}

type slice = {
  sl_now : float;
  sl_handles : Shard.epoch Pool.handle array;
}

let create_instance ?snapshot_dir ?restore ?(on_barrier = fun ~now:_ -> ())
    ?(trace = Trace.disabled) ?timeseries ?ts_extra ?aux ?(pid_base = 0)
    ?label ?(faults = Faults.disabled) ?(events = Events.null) ~jobs ~vm_for
    ~strategy_for config =
  if jobs < 1 then invalid_arg "Campaign.run_parallel: jobs must be >= 1";
  if config.snapshot_every <= 0.0 then
    invalid_arg "Campaign.run_parallel: snapshot_every must be positive";
  let metrics = Metrics.create () in
  (* Tracer handouts happen here, on the main domain, before any worker
     exists; each shard then owns its tracer exclusively. *)
  let lane suffix =
    match label with None -> suffix | Some l -> l ^ "-" ^ suffix
  in
  let main_tracer =
    Trace.tracer trace ~pid:pid_base ~name:(lane "campaign-main")
  in
  let sampler = make_sampler ?timeseries ?ts_extra () in
  let root_rng = Rng.create config.seed in
  (* Named splits do not advance the parent, so shard streams and the
     merge stream are independent of jobs ordering and of each other. *)
  let merge_rng = Rng.split_named root_rng "merge" in
  let shards =
    Array.init jobs (fun s ->
        let seeds =
          List.filteri (fun i _ -> i mod jobs = s) config.seed_corpus
        in
        Shard.create
          ~tracer:
            (Trace.tracer trace ~pid:(pid_base + 1 + s)
               ~name:(lane (Printf.sprintf "shard-%d" s)))
          ~id:s ~vm:(vm_for s) ~strategy:(strategy_for s)
          ~rng:(Rng.split_named root_rng (Printf.sprintf "shard-%d" s))
          ~seeds ())
  in
  let kernel = Vm.kernel (Shard.vm shards.(0)) in
  let dist_to_target =
    match config.target with
    | Some b -> Sp_cfg.Cfg.distances_to (Kernel.cfg kernel) b
    | None -> [||]
  in
  let entry_distance (entry : Corpus.entry) =
    Bitset.fold
      (fun b acc -> min acc dist_to_target.(b))
      entry.Corpus.blocks max_int
  in
  let corpus =
    Corpus.create
      ?distance:(if config.target = None then None else Some entry_distance)
      ()
  in
  let num_blocks = Kernel.num_blocks kernel in
  let num_edges = Sp_cfg.Cfg.num_edges (Kernel.cfg kernel) in
  let accum =
    match restore with
    | None -> Accum.create ~num_blocks ~num_edges
    | Some snap ->
      let a = Accum.of_json (Json.Decode.field "accum" snap) in
      if Accum.capacities a <> (num_blocks, num_edges) then
        Json.Decode.error
          "snapshot accumulator capacities do not match the kernel";
      a
  in
  let inst =
    {
      i_config = config;
      i_jobs = jobs;
      i_shards = shards;
      i_corpus = corpus;
      i_accum = accum;
      i_triage = Triage.create kernel;
      i_metrics = metrics;
      i_tracer = main_tracer;
      i_sampler = sampler;
      i_merge_rng = merge_rng;
      i_origin_stats = Hashtbl.create 16;
      i_on_barrier = on_barrier;
      i_snapshot_dir = snapshot_dir;
      i_aux = aux;
      i_faults = faults;
      i_events = events;
      i_label = label;
      i_fsite =
        (match label with
        | None -> Fun.id
        | Some l -> fun site -> l ^ "/" ^ site);
      i_series_rev = [];
      i_next_snapshot = config.snapshot_every;
      i_crash_count = 0;
      i_target_hit_at = None;
      i_barrier = 0;
      i_stopped = false;
    }
  in
  let parse = Parser.program (Kernel.spec_db kernel) in
  (* Restore the merged global state and each shard's private stream
     state from a barrier snapshot. Everything below is exactly the
     state the uninterrupted run held at that barrier, so the loop
     continues bit-for-bit. *)
  (match restore with
  | None -> ()
  | Some snap ->
    let open Json.Decode in
    Rng.set_state merge_rng (int64_field "merge_rng" snap);
    List.iter
      (fun e -> ignore (Corpus.add corpus e))
      (Snapshot.corpus_entries_of_json ~parse (field "corpus" snap));
    Triage.restore_state inst.i_triage
      ~bug_of_id:(fun id ->
        Array.find_opt (fun b -> b.Bug.id = id) (Kernel.bugs kernel))
      ~parse (field "triage" snap);
    inst.i_crash_count <- List.length (Triage.all_found inst.i_triage);
    inst.i_target_hit_at <- opt_time_of_json "target_hit_at" snap;
    inst.i_next_snapshot <- num_field "next_snapshot" snap;
    inst.i_series_rev <- List.rev_map row_of_json (arr_field "series" snap);
    (match inst.i_series_rev with
    | last :: _ ->
      sampler.sm_prev_time <- last.s_time;
      sampler.sm_prev_execs <- last.s_execs
    | [] -> ());
    List.iter
      (fun (o, v) -> Hashtbl.replace inst.i_origin_stats o v)
      (origin_stats_of_json (field "origin_stats" snap));
    let shard_states = arr_field "shards" snap in
    if List.length shard_states <> jobs then
      error "snapshot has %d shards, resuming with jobs=%d"
        (List.length shard_states) jobs;
    List.iteri (fun i sj -> Shard.restore_state shards.(i) ~parse sj) shard_states;
    (* Strategy-side state (inference/funnel/prediction caches) rides in
       the snapshot's [aux] field; a caller that supplies an [aux] hook
       gets it back, others ignore it. *)
    (match (aux, Json.member "aux" snap) with
    | Some a, Some (Json.Obj _ as j) -> a.aux_restore j
    | Some _, (Some Json.Null | None) -> ()
    | Some _, Some _ -> error "snapshot aux: expected object or null"
    | None, _ -> ());
    inst.i_barrier <- int_field "barrier" snap;
    inst.i_stopped <- bool_field "stopped" snap);
  inst

let instance_stopped inst = inst.i_stopped

let instance_barrier inst = inst.i_barrier

let instance_jobs inst = inst.i_jobs

let instance_executions inst =
  Array.fold_left
    (fun acc sh -> acc + Vm.executions (Shard.vm sh))
    0 inst.i_shards

(* Virtual time the next slice will run up to — the stride scheduler's
   per-tenant virtual clock. *)
let instance_next_time inst =
  Float.min inst.i_config.duration
    (float_of_int (inst.i_barrier + 1) *. inst.i_config.snapshot_every)

let snapshot_doc inst ~stopped ~barrier =
  let config = inst.i_config in
  Json.Obj
    [ ("format", Json.Str "snowplow-campaign-snapshot");
      ("version", Json.Num (float_of_int Snapshot.format_version));
      ( "config",
        Json.Obj
          [ ("seed", Json.Num (float_of_int config.seed));
            ("jobs", Json.Num (float_of_int inst.i_jobs));
            ("duration", Json.Num config.duration);
            ("snapshot_every", Json.Num config.snapshot_every);
            ("attempt_repro", Json.Bool config.attempt_repro);
            ( "target",
              match config.target with
              | None -> Json.Null
              | Some b -> Json.Num (float_of_int b) )
          ] );
      ("barrier", Json.Num (float_of_int barrier));
      ("next_snapshot", Json.Num inst.i_next_snapshot);
      ("stopped", Json.Bool stopped);
      ("target_hit_at", opt_time_to_json inst.i_target_hit_at);
      ("series", Json.Arr (List.rev_map row_to_json inst.i_series_rev));
      ( "origin_stats",
        origin_stats_to_json
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) inst.i_origin_stats []
          |> List.sort compare) );
      ("merge_rng", Json.Decode.int64_to_json (Rng.state inst.i_merge_rng));
      ("corpus", Snapshot.corpus_to_json inst.i_corpus);
      ("accum", Accum.to_json inst.i_accum);
      ("triage", Triage.state_json inst.i_triage);
      ( "shards",
        Json.Arr (Array.to_list (Array.map Shard.state_json inst.i_shards)) );
      ( "aux",
        match inst.i_aux with None -> Json.Null | Some a -> a.aux_json () )
    ]

let take_instance_snapshots inst now =
  let config = inst.i_config in
  while
    now >= inst.i_next_snapshot -. 1e-9
    && inst.i_next_snapshot <= config.duration
  do
    let s_blocks = Accum.blocks_covered inst.i_accum in
    let s_edges = Accum.edges_covered inst.i_accum in
    let s_execs = instance_executions inst in
    inst.i_series_rev <-
      {
        s_time = inst.i_next_snapshot;
        s_blocks;
        s_edges;
        s_crashes = inst.i_crash_count;
        s_execs;
      }
      :: inst.i_series_rev;
    (* Sampled after the shard-order merge, from merged global state
       only: the timeseries stays bit-for-bit reproducible. *)
    sample_row inst.i_sampler ~time:inst.i_next_snapshot ~blocks:s_blocks
      ~edges:s_edges ~crashes:inst.i_crash_count ~execs:s_execs
      ~corpus_size:(Corpus.size inst.i_corpus);
    Tracer.instant inst.i_tracer "campaign.snapshot";
    Tracer.counter inst.i_tracer "edges" (float_of_int s_edges);
    inst.i_next_snapshot <- inst.i_next_snapshot +. config.snapshot_every
  done

let merge_epoch inst (ep : Shard.epoch) =
  (* Admissions first, re-judged against the evolving global
     accumulator: an entry enters the global corpus only if it still
     contributes coverage no earlier shard (or barrier) already has. *)
  List.iter
    (fun (entry : Corpus.entry) ->
      let delta =
        Accum.add inst.i_accum ~blocks:entry.Corpus.blocks
          ~edges:entry.Corpus.edges
      in
      if delta.Accum.new_blocks > 0 || delta.Accum.new_edges > 0 then
        if Corpus.add inst.i_corpus entry then
          Metrics.incr inst.i_metrics "campaign.corpus_adds")
    ep.Shard.ep_admissions;
  (* Then the rest of the epoch's coverage (crashing and non-novel
     executions contribute coverage without corpus entries). *)
  ignore
    (Accum.add inst.i_accum ~blocks:ep.Shard.ep_blocks
       ~edges:ep.Shard.ep_edges);
  List.iter
    (fun (ce : Shard.crash_event) ->
      match
        Triage.record ~attempt_repro:inst.i_config.attempt_repro inst.i_triage
          inst.i_merge_rng
          ~vm:(Shard.vm inst.i_shards.(ep.Shard.ep_shard))
          ~now:ce.Shard.ce_time ce.Shard.ce_crash ce.Shard.ce_prog
      with
      | Some _ ->
        inst.i_crash_count <- inst.i_crash_count + 1;
        Metrics.incr inst.i_metrics "campaign.crashes"
      | None -> ())
    ep.Shard.ep_crashes;
  List.iter
    (fun (origin, (execs, new_edges)) ->
      let e0, n0 =
        Option.value ~default:(0, 0)
          (Hashtbl.find_opt inst.i_origin_stats origin)
      in
      Hashtbl.replace inst.i_origin_stats origin (e0 + execs, n0 + new_edges))
    ep.Shard.ep_origin

(* Submit one barrier slice (all shards' next epoch) to [pool]. The
   instance is in-slice until {!complete_slice} folds the results back —
   interleaving other instances' slices in between is what the scheduler
   does, and it cannot affect this instance's state: the epochs already
   hold their frozen inputs.

   [max_execs] caps the slice's total VM executions; the cap is dealt
   across shards as evenly as possible (floor per shard, remainder to
   the lowest shard ids) so the split — like everything else — is a pure
   function of (cap, jobs). *)
let begin_slice inst ~pool ?max_execs () =
  if inst.i_stopped then invalid_arg "Campaign.begin_slice: instance stopped";
  inst.i_barrier <- inst.i_barrier + 1;
  let now =
    Float.min inst.i_config.duration
      (float_of_int inst.i_barrier *. inst.i_config.snapshot_every)
  in
  Metrics.incr inst.i_metrics "campaign.barriers";
  Tracer.begin_span inst.i_tracer "campaign.barrier";
  let cap_for s =
    match max_execs with
    | None -> None
    | Some c ->
      let base = c / inst.i_jobs and rem = c mod inst.i_jobs in
      Some (base + if s < rem then 1 else 0)
  in
  (* Epoch fault decisions are consulted here, on the main domain in
     shard order (k = slice-wide epoch ordinal), so the plan's stats are
     schedule-independent; the doomed task then raises from its worker,
     exercising the same await/backtrace path a genuine epoch crash
     takes. *)
  let epoch_site = inst.i_fsite "shard.epoch" in
  let epoch_fails =
    if not (Faults.enabled inst.i_faults) then fun _ -> false
    else begin
      let base = (inst.i_barrier - 1) * inst.i_jobs in
      let flags =
        Array.init inst.i_jobs (fun s ->
            Faults.should_fail inst.i_faults epoch_site ~k:(base + s))
      in
      fun s -> flags.(s)
    end
  in
  let handles =
    Array.map
      (fun sh ->
        Pool.submit pool (fun () ->
            if epoch_fails (Shard.id sh) then
              raise (Faults.Injected epoch_site);
            Shard.run_epoch sh
              ?max_execs:(cap_for (Shard.id sh))
              ~corpus:inst.i_corpus ~accum:inst.i_accum
              ~target:inst.i_config.target ~until:now ()))
      inst.i_shards
  in
  { sl_now = now; sl_handles = handles }

let complete_slice inst slice =
  let config = inst.i_config in
  let now = slice.sl_now in
  (* Await EVERY handle before judging any: a raising epoch must not
     leave sibling epochs in flight (the scheduler rebuilds the instance
     on failure, which requires the slice quiescent). The first failure
     in shard order then re-raises with its original backtrace. *)
  let results =
    Metrics.time_wall inst.i_metrics "pool.barrier_wait_s" (fun () ->
        Array.map Pool.await_full slice.sl_handles)
  in
  Array.iter
    (function
      | Ok _ -> ()
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    results;
  let epochs =
    Array.to_list results
    |> List.map (function Ok ep -> ep | Error _ -> assert false)
  in
  (* Fold in shard order — the whole determinism story. *)
  Tracer.span inst.i_tracer "campaign.merge" (fun () ->
      List.iter (merge_epoch inst) epochs);
  (* First barrier that observed the target wins; among shards of one
     barrier, the earliest shard-local hit time. *)
  (match config.target with
  | Some _ when inst.i_target_hit_at = None ->
    List.iter
      (fun (ep : Shard.epoch) ->
        match ep.Shard.ep_target_hit_at with
        | Some at ->
          inst.i_target_hit_at <-
            Some
              (match inst.i_target_hit_at with
              | None -> at
              | Some best -> Float.min best at)
        | None -> ())
      epochs
  | Some _ | None -> ());
  inst.i_on_barrier ~now;
  take_instance_snapshots inst now;
  let all_idle =
    List.for_all (fun (ep : Shard.epoch) -> ep.Shard.ep_idle) epochs
  in
  if
    now >= config.duration
    || (config.target <> None && inst.i_target_hit_at <> None)
    || all_idle
  then inst.i_stopped <- true;
  (* Persist the merged state after the stop decision, so the snapshot
     carries it: resuming from a final snapshot goes straight to report
     assembly instead of re-entering the loop. *)
  (match inst.i_snapshot_dir with
  | Some dir ->
    (* [k] = barrier number: the crash-mid-write site is addressable per
       barrier and stable across resume. *)
    let inject =
      if Faults.enabled inst.i_faults then
        Some
          (fun () ->
            Faults.fire inst.i_faults
              (inst.i_fsite "io.write_atomic")
              ~k:inst.i_barrier)
      else None
    in
    let file =
      Snapshot.write ?inject ~dir ~barrier:inst.i_barrier
        (snapshot_doc inst ~stopped:inst.i_stopped ~barrier:inst.i_barrier)
    in
    Events.log inst.i_events ~kind:"snapshot.write"
      [ ( "label",
          match inst.i_label with None -> Json.Null | Some l -> Json.Str l );
        ("file", Json.Str file);
        ("barrier", Json.Num (float_of_int inst.i_barrier));
        ("now", Json.Num now);
        ("stopped", Json.Bool inst.i_stopped)
      ]
  | None -> ());
  Tracer.end_span inst.i_tracer "campaign.barrier"

let step_instance inst ~pool ?max_execs () =
  complete_slice inst (begin_slice inst ~pool ?max_execs ())

let finish_instance inst =
  let config = inst.i_config in
  (* Close the series grid out to the configured duration, exactly like
     the sequential executor does on early exit. *)
  take_instance_snapshots inst config.duration;
  let needs_final =
    match inst.i_series_rev with
    | last :: _ -> last.s_time < config.duration
    | [] -> true
  in
  if needs_final then begin
    let s_blocks = Accum.blocks_covered inst.i_accum in
    let s_edges = Accum.edges_covered inst.i_accum in
    let s_execs = instance_executions inst in
    inst.i_series_rev <-
      {
        s_time = config.duration;
        s_blocks;
        s_edges;
        s_crashes = inst.i_crash_count;
        s_execs;
      }
      :: inst.i_series_rev;
    sample_row inst.i_sampler ~time:config.duration ~blocks:s_blocks
      ~edges:s_edges ~crashes:inst.i_crash_count ~execs:s_execs
      ~corpus_size:(Corpus.size inst.i_corpus)
  end;
  (* Fold per-shard registries (loop + vm counters) into the report's,
     in shard order; no slice is in flight, so no registry is written
     concurrently. *)
  Array.iter
    (fun sh -> Metrics.merge_into ~dst:inst.i_metrics (Shard.metrics sh))
    inst.i_shards;
  {
    series = List.rev inst.i_series_rev;
    final_blocks = Accum.blocks_covered inst.i_accum;
    final_edges = Accum.edges_covered inst.i_accum;
    crashes = Triage.all_found inst.i_triage;
    new_crashes = Triage.new_crashes inst.i_triage;
    known_crashes = Triage.known_crashes inst.i_triage;
    executions = instance_executions inst;
    corpus_size = Corpus.size inst.i_corpus;
    target_hit_at = inst.i_target_hit_at;
    origin_stats =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) inst.i_origin_stats []
      |> List.sort compare;
    corpus = inst.i_corpus;
    covered_blocks = Accum.snapshot_blocks inst.i_accum;
    metrics = inst.i_metrics;
  }

let run_sharded ?snapshot_dir ?restore ?on_barrier ?(trace = Trace.disabled)
    ?timeseries ?ts_extra ?aux ?faults ~jobs ~vm_for ~strategy_for config =
  let inst =
    create_instance ?snapshot_dir ?restore ?on_barrier ~trace ?timeseries
      ?ts_extra ?aux ?faults ~jobs ~vm_for ~strategy_for config
  in
  let pool_metrics = Metrics.create () in
  Pool.with_pool ?faults ~metrics:pool_metrics
    ~tracer_for:(fun i ->
      Trace.tracer trace ~pid:(1001 + i)
        ~name:(Printf.sprintf "pool-worker-%d" i))
    ~workers:jobs
    (fun pool ->
      while not inst.i_stopped do
        step_instance inst ~pool ()
      done);
  let report = finish_instance inst in
  (* The pool's registry merges after shutdown: workers are joined. *)
  Metrics.merge_into ~dst:report.metrics pool_metrics;
  report

let run_parallel ?on_barrier ?(trace = Trace.disabled) ?timeseries ?ts_extra
    ?snapshot_dir ?aux ?faults ~jobs ~vm_for ~strategy_for config =
  if jobs < 1 then invalid_arg "Campaign.run_parallel: jobs must be >= 1";
  if config.snapshot_every <= 0.0 then
    invalid_arg "Campaign.run_parallel: snapshot_every must be positive";
  (* Snapshotting needs the barrier structure, so it forces the sharded
     path even for a single job; without it jobs = 1 keeps delegating to
     the sequential executor (and stays bit-identical to it). *)
  if jobs = 1 && snapshot_dir = None && Option.is_none faults then
    run ~trace ?timeseries ?ts_extra (vm_for 0) (strategy_for 0) config
  else
    run_sharded ?snapshot_dir ?on_barrier ~trace ?timeseries ?ts_extra ?aux
      ?faults ~jobs ~vm_for ~strategy_for config

(* Raises [Json.Decode.Error]; callers wrap in [Json.Decode.run]. *)
let validate_snapshot ~snapshot ~jobs config =
  let open Json.Decode in
  (match Json.member "format" snapshot with
  | Some (Json.Str "snowplow-campaign-snapshot") -> ()
  | _ -> error "not a campaign snapshot (missing or wrong \"format\")");
  let v = int_field "version" snapshot in
  if v <> Snapshot.format_version then
    error "snapshot format version %d, this build reads %d" v
      Snapshot.format_version;
  let c = field "config" snapshot in
  let mismatch what = error "snapshot config mismatch: %s differs" what in
  if int_field "seed" c <> config.seed then mismatch "seed";
  if int_field "jobs" c <> jobs then mismatch "jobs";
  if num_field "duration" c <> config.duration then mismatch "duration";
  if num_field "snapshot_every" c <> config.snapshot_every then
    mismatch "snapshot_every";
  if bool_field "attempt_repro" c <> config.attempt_repro then
    mismatch "attempt_repro";
  match (field "target" c, config.target) with
  | Json.Null, None -> ()
  | Json.Num f, Some b when Float.is_integer f && int_of_float f = b -> ()
  | _ -> mismatch "target"

let resume ?on_barrier ?(trace = Trace.disabled) ?timeseries ?ts_extra
    ?snapshot_dir ?aux ?faults ~snapshot ~jobs ~vm_for ~strategy_for config =
  Json.Decode.run (fun () ->
      validate_snapshot ~snapshot ~jobs config;
      run_sharded ~restore:snapshot ?snapshot_dir ?on_barrier ~trace
        ?timeseries ?ts_extra ?aux ?faults ~jobs ~vm_for ~strategy_for config)

let coverage_at report time =
  let rec go last = function
    | [] -> last
    | s :: rest -> if s.s_time > time then last else go s.s_edges rest
  in
  go 0 report.series

let time_to_edges report level =
  let rec go = function
    | [] -> None
    | s :: rest -> if s.s_edges >= level then Some s.s_time else go rest
  in
  go report.series
