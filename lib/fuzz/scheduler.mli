(** Multi-tenant campaign scheduler: N concurrent campaigns over one
    shared worker pool.

    The real Snowplow deployment splits many fuzzer machines from one
    warm batched inference service; this is that shape in-process. Each
    {e tenant} is an independent campaign — its own config, seed,
    corpus, coverage accumulator and RNG streams — advanced one barrier
    slice at a time (see {!Campaign.begin_slice}) over a single
    {!Sp_util.Pool}. Snowplow tenants additionally share one warm
    [Snowplow.Funnel]-backed inference endpoint via their barrier hooks;
    the CLI's [serve] command wires that up.

    {b Determinism.} A tenant's slice runs against its own barrier-frozen
    state and merges on the scheduling domain in shard order, so its
    {!Campaign.report_json} is byte-identical to the same campaign run
    solo with the same (seed, jobs) — the (seed, jobs) guarantee extends
    to (seed, jobs, schedule). "Solo" means {!Campaign.run_parallel} on
    the barrier-sliced instance path, the one it always takes except the
    jobs = 1, no-snapshot case, where it delegates to the sequential
    executor (a different instruction stream). The schedule itself is
    also deterministic: admission is a pure function of tenant state,
    never of wall-clock timing.

    {b Fairness.} Stride scheduling over virtual time: a tenant's pass is
    its next barrier's virtual time divided by its weight, lowest pass
    first (ties to the lowest tenant index); a weight-2 tenant therefore
    advances its virtual clock twice as fast as a weight-1 one. Each
    round admits a batch of slices in stride order while their summed
    jobs fit the pool (the head of the order is always admitted), so the
    pool is kept busy — work-conserving — without starving anyone.

    {b Quotas.} A tenant's [exec_budget] caps the VM executions it may
    perform under this scheduler run, enforced exactly: every slice is
    capped at the tenant's remaining budget ({!Campaign.begin_slice}'s
    [max_execs]), so the budget can never be overrun. An exhausted
    tenant stops being scheduled and is reported with
    [tr_budget_exhausted = true].

    {b Failure containment.} A tenant whose slice raises never takes the
    roster down. The exception and its backtrace are captured into the
    tenant's failure record (and a [failure-NNNNNN-gG.json] forensic
    file beside its snapshots), the dead instance is discarded — its
    executions stay charged to the budget — and the tenant is retried
    from its newest valid snapshot after an exponential backoff
    (1, 2, 4... scheduling rounds), up to [max_tenant_retries] retry
    generations; after that it is evicted to the terminal Quarantined
    state ([tr_quarantined = true]) while every other tenant keeps
    running, with admission recomputed over the survivors. Each retry
    generation salts the instance label ([name#1], [name#2], ...), which
    prefixes the campaign's fault-injection sites — so under a
    deterministic {!Sp_util.Faults} plan the whole
    fail/backoff/retry/quarantine cascade replays byte-identically, and
    a scheduled fault only re-kills a retry the plan explicitly
    addresses. *)

type tenant

val tenant :
  ?weight:float ->
  ?exec_budget:int ->
  ?on_barrier:(now:float -> unit) ->
  ?snapshot_dir:string ->
  ?restore:Sp_obs.Json.t ->
  ?aux:Campaign.aux ->
  name:string ->
  jobs:int ->
  vm_for:(int -> Vm.t) ->
  strategy_for:(int -> Strategy.t) ->
  Campaign.config ->
  tenant
(** [weight] (default 1.0) must be finite and positive; [exec_budget]
    (default unlimited) must be >= 0; [jobs] >= 1; [name] non-empty and
    unique within a {!run}. [snapshot_dir]/[restore]/[aux]/[on_barrier]
    have {!Campaign.run_parallel}/{!Campaign.resume} semantics, per
    tenant. Raises [Invalid_argument] on a bad parameter. *)

type failure = {
  fl_slice : int;
      (** global slice ordinal (1-based) of the failed slice; for a
          failed {e rebuild}, the ordinal of the last admitted slice *)
  fl_barrier : int;  (** tenant barrier in flight when it raised *)
  fl_generation : int;  (** 0 = first run, [n] = [n]-th retry *)
  fl_exn : string;  (** [Printexc.to_string] of the exception *)
  fl_backtrace : string;  (** the raising shard's original backtrace *)
}
(** One captured tenant failure. *)

type tenant_report = {
  tr_name : string;
  tr_weight : float;
  tr_slices : int;  (** barrier slices this run completed for the tenant *)
  tr_executions : int;
      (** VM executions performed under this scheduler run (a resumed
          tenant's pre-snapshot executions are not counted; work done by
          failed retry generations {e is} counted) *)
  tr_budget_exhausted : bool;
  tr_completed : bool;  (** the campaign reached its own stop condition *)
  tr_quarantined : bool;  (** evicted after exhausting its retries *)
  tr_retries : int;  (** retry generations started (0 = never failed) *)
  tr_failures : failure list;  (** chronological *)
  tr_report : Campaign.report;
      (** for a completed tenant, byte-identical ({!Campaign.report_json})
          to the same campaign run solo; for a budget- or
          [max_slices]-cut tenant, the state as of its last completed
          barrier; for a quarantined tenant, the state its last (failed)
          generation held as of its last completed barrier *)
}

type report = {
  sr_tenants : tenant_report list;  (** in the order tenants were given *)
  sr_slices : int;
  sr_schedule : string list;
      (** tenant name per slice, in admission order — the full,
          deterministic schedule *)
  sr_workers : int;
  sr_metrics : Sp_util.Metrics.t;
      (** [scheduler.slices], [scheduler.execs_total],
          [scheduler.tenant.<name>.slices]/[.execs], the failure-path
          [scheduler.failures] / [scheduler.quarantined] /
          [scheduler.tenant.<name>.failures] counters, plus the shared
          pool's [pool.*] metrics (merged after shutdown) *)
}

type tenant_status = {
  ts_name : string;
  ts_weight : float;
  ts_state : string;
      (** ["healthy"] | ["backoff"] | ["quarantined"] | ["completed"] |
          ["exhausted"] *)
  ts_pass : float;  (** stride pass (next barrier time / weight) *)
  ts_barrier : int;  (** barriers completed so far this run *)
  ts_slices : int;
  ts_executions : int;  (** {!tenant_report.tr_executions} so far *)
  ts_budget_remaining : int option;  (** [None] when unbudgeted *)
  ts_retries : int;  (** retry generations started *)
}
(** Point-in-time seat state, as published to the telemetry plane at
    every barrier. *)

val tenant_status_json : tenant_status -> Sp_obs.Json.t
(** The exact object served per tenant by the exporter's [/tenants]
    endpoint — fields [name], [weight], [state], [pass], [barrier],
    [slices], [executions], [budget_remaining] (number or null),
    [retries]. *)

type telemetry
(** An armed telemetry plane: the exporter to publish into, plus any
    extra gauges to append to each scrape. *)

val telemetry :
  ?extra:(unit -> Sp_obs.Exposition.metric list) ->
  Sp_obs.Exporter.t ->
  telemetry
(** [extra] (default none) is called on the scheduling domain at each
    publication — the hook the CLI uses to append inference/funnel/
    trainer series the scheduler itself cannot see. It must read only
    barrier-stable state. *)

val run :
  ?workers:int ->
  ?trace:Sp_obs.Trace.t ->
  ?timeseries:Sp_obs.Timeseries.t ->
  ?max_slices:int ->
  ?faults:Sp_util.Faults.t ->
  ?max_tenant_retries:int ->
  ?events:Sp_obs.Events.t ->
  ?telemetry:telemetry ->
  tenant list ->
  (report, string) result
(** Multiplex the tenants over one shared pool until every tenant has
    completed or exhausted its budget (or [max_slices] slices have been
    admitted — the kill point the resume tests use). [workers] defaults
    to the largest tenant's [jobs]. Restore snapshots are validated
    before any slice runs; a malformed one is an [Error] and nothing is
    scheduled. Raises [Invalid_argument] on an empty tenant list, a
    duplicate name, [workers < 1] or [max_tenant_retries < 0].

    [faults] (default {!Sp_util.Faults.disabled}) arms the shared pool's
    and every tenant instance's injection sites (see
    {!Campaign.create_instance}); [max_tenant_retries] (default 3) is
    the number of retry generations a failing tenant gets before
    quarantine.

    Telemetry: with [trace], pid 0 is the scheduler lane
    ([scheduler.slice] spans, [scheduler.quarantine] spans around
    failure handling, an [execs_total] counter and — when [faults] is
    armed — a [faults.injected] counter), tenant [i] owns
    pids [100 * (i + 1) ..] (its campaign-main + shard lanes, labelled
    with the tenant name), and shared pool worker [w] is pid
    [100_001 + w]. With [timeseries], one row is appended per completed
    slice — time axis = slice ordinal — carrying [tenant] (index),
    [tenant_barrier], [tenant_execs] and [execs_total].

    [events] (default {!Sp_obs.Events.null}) receives the structured
    event stream: [scheduler.start]/[scheduler.finish], a Debug
    [scheduler.slice] per completed slice, [scheduler.budget_exhausted],
    and the failure path — Error [scheduler.failure], Warn
    [scheduler.backoff] (with the retry generation and due round), Info
    [scheduler.retry] on a successful rebuild, Error
    [scheduler.quarantine] on eviction. It is also threaded into
    snapshot-fallback scans ([snapshot.corrupt]).

    [telemetry] (default unarmed) publishes an immutable snapshot of
    seat state — metrics registry projection, per-tenant series, health
    and tenant-status documents — into the exporter at every barrier
    and once after the pool's metrics merge. Publication happens
    exclusively on the scheduling domain between slices, so arming it
    cannot change any report or snapshot byte. *)
