module Rng = Sp_util.Rng
module Bug = Sp_kernel.Bug
module Kernel = Sp_kernel.Kernel
module Prog = Sp_syzlang.Prog

let filtered_keywords = [ "INFO:"; "SYZFAIL"; "lost connection to the VM" ]

let severity_filter description =
  not
    (List.exists
       (fun kw ->
         (* substring search *)
         let nk = String.length kw and nd = String.length description in
         let rec at i = i + nk <= nd && (String.sub description i nk = kw || at (i + 1)) in
         at 0)
       filtered_keywords)

type found = {
  bug : Bug.t;
  description : string;
  found_at : float;
  witness : Prog.t;
  reproducer : Prog.t option;
}

type t = {
  known : (string, unit) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;
  mutable found_rev : found list;
}

let create kernel =
  let known = Hashtbl.create 64 in
  Array.iter
    (fun bug -> if bug.Bug.known then Hashtbl.add known (Bug.description bug) ())
    (Kernel.bugs kernel);
  { known; seen = Hashtbl.create 64; found_rev = [] }

let is_known t description = Hashtbl.mem t.known description

(* Racy crashes replay only rarely: the interpreter is deterministic, so
   irreproducibility is modelled as a per-attempt coin, matching the ~34%
   no-reproducer rate of Table 3. *)
let replay_crashes rng ~vm bug prog =
  let r = Vm.run_free vm prog in
  match r.Kernel.crash with
  | Some c when c.Kernel.bug.Bug.id = bug.Bug.id ->
    if bug.Bug.concurrency then Rng.coin rng 0.08 else true
  | Some _ | None -> false

let reproduce t rng ~vm bug prog =
  ignore t;
  let rec attempt k = k > 0 && (replay_crashes rng ~vm bug prog || attempt (k - 1)) in
  if not (attempt 3) then None
  else begin
    (* Minimization: greedily drop calls while the crash persists. *)
    let current = ref prog in
    let changed = ref true in
    while !changed do
      changed := false;
      let n = Array.length !current in
      let rec try_drop i =
        if i < n && not !changed then begin
          (if n > 1 then
             let candidate = Prog.remove_call !current i in
             if replay_crashes rng ~vm bug candidate then begin
               current := candidate;
               changed := true
             end);
          try_drop (i + 1)
        end
      in
      try_drop 0
    done;
    Some !current
  end

let record ?(attempt_repro = true) t rng ~vm ~now (crash : Kernel.crash) prog =
  let description = Bug.description crash.Kernel.bug in
  if (not (severity_filter description)) || Hashtbl.mem t.seen description then None
  else begin
    Hashtbl.add t.seen description ();
    let reproducer =
      if attempt_repro then reproduce t rng ~vm crash.Kernel.bug prog else None
    in
    let f = { bug = crash.Kernel.bug; description; found_at = now; witness = prog; reproducer } in
    t.found_rev <- f :: t.found_rev;
    Some f
  end

let all_found t = List.rev t.found_rev

module Json = Sp_obs.Json

let found_to_json f =
  Json.Obj
    [ ("bug_id", Json.Num (float_of_int f.bug.Bug.id));
      ("description", Json.Str f.description);
      ("found_at", Json.Num f.found_at);
      ("witness", Json.Str (Prog.to_string f.witness));
      ( "reproducer",
        match f.reproducer with
        | Some p -> Json.Str (Prog.to_string p)
        | None -> Json.Null )
    ]

let found_of_json ~bug_of_id ~parse j =
  let open Json.Decode in
  let bug_id = int_field "bug_id" j in
  let bug =
    match bug_of_id bug_id with
    | Some b -> b
    | None -> error "triage: unknown bug id %d" bug_id
  in
  let parse_prog name =
    match parse (str_field name j) with
    | Ok p -> p
    | Error msg -> error "triage %s: %s" name msg
  in
  {
    bug;
    description = str_field "description" j;
    found_at = num_field "found_at" j;
    witness = parse_prog "witness";
    reproducer =
      (match field "reproducer" j with
      | Json.Null -> None
      | Json.Str _ -> Some (parse_prog "reproducer")
      | _ -> error "triage reproducer: expected string or null");
  }

let state_json t = Json.Arr (List.map found_to_json (all_found t))

let restore_state t ~bug_of_id ~parse j =
  let open Json.Decode in
  let items =
    match j with
    | Json.Arr items -> items
    | _ -> error "triage state: expected array"
  in
  let found = List.map (found_of_json ~bug_of_id ~parse) items in
  Hashtbl.reset t.seen;
  List.iter (fun f -> Hashtbl.replace t.seen f.description ()) found;
  t.found_rev <- List.rev found

let new_crashes t =
  List.filter (fun f -> not (is_known t f.description)) (all_found t)

let known_crashes t = List.filter (fun f -> is_known t f.description) (all_found t)
