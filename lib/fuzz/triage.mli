(** Crash triage: filtering, deduplication, known-crash matching and
    reproducer extraction.

    Implements §5.3.2's pipeline: crash descriptions are filtered by the
    severity keywords the paper excludes ("INFO:", "SYZFAIL", "lost
    connection to the VM"), deduplicated by description, compared against a
    Syzbot-style list of crashes already known, and finally replayed by a
    syz-repro analogue that also minimizes the reproducer. Concurrency-
    flavoured bugs replay only probabilistically, which is why a third of
    the paper's crashes (30/87) have no reproducer. *)

val severity_filter : string -> bool
(** True when a crash description passes the paper's keyword filter. *)

type found = {
  bug : Sp_kernel.Bug.t;
  description : string;
  found_at : float;  (** virtual campaign time *)
  witness : Sp_syzlang.Prog.t;  (** the test that triggered it *)
  reproducer : Sp_syzlang.Prog.t option;  (** minimized, when replayable *)
}

type t

val create : Sp_kernel.Kernel.t -> t
(** The known-crash list is seeded with the kernel's [known] bugs (Syzbot
    would have reported them in earlier campaigns). *)

val record :
  ?attempt_repro:bool ->
  t ->
  Sp_util.Rng.t ->
  vm:Vm.t ->
  now:float ->
  Sp_kernel.Kernel.crash ->
  Sp_syzlang.Prog.t ->
  found option
(** Process one crashing execution. Returns [Some found] the first time a
    description is seen (with reproduction attempted unless
    [attempt_repro:false]); [None] for duplicates or filtered crashes. *)

val all_found : t -> found list
(** In discovery order. *)

val new_crashes : t -> found list
(** Found crashes whose description is not on the known list. *)

val known_crashes : t -> found list

val is_known : t -> string -> bool

val reproduce :
  t ->
  Sp_util.Rng.t ->
  vm:Vm.t ->
  Sp_kernel.Bug.t ->
  Sp_syzlang.Prog.t ->
  Sp_syzlang.Prog.t option
(** The syz-repro analogue: replay up to 3 times (racy bugs replay only
    rarely per attempt), then greedily drop calls while the crash
    persists. *)

(** {1 Serialization}

    Campaign snapshots persist the found-crash list (programs as syz-like
    text, which round-trips exactly); the dedup set is the set of found
    descriptions and is rebuilt from the list on restore. The known-crash
    list comes from the kernel at [create] and is not persisted. *)

val found_to_json : found -> Sp_obs.Json.t

val state_json : t -> Sp_obs.Json.t

val restore_state :
  t ->
  bug_of_id:(int -> Sp_kernel.Bug.t option) ->
  parse:(string -> (Sp_syzlang.Prog.t, string) result) ->
  Sp_obs.Json.t ->
  unit
(** Restore into a freshly created triage. Raises
    [Sp_obs.Json.Decode.Error] on malformed input or unknown bug ids. *)
