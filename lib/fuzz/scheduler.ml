module Rng = Sp_util.Rng
module Metrics = Sp_util.Metrics
module Pool = Sp_util.Pool
module Faults = Sp_util.Faults
module Trace = Sp_obs.Trace
module Tracer = Sp_obs.Tracer
module Timeseries = Sp_obs.Timeseries
module Json = Sp_obs.Json
module Events = Sp_obs.Events
module Exporter = Sp_obs.Exporter
module Exposition = Sp_obs.Exposition

type tenant = {
  t_name : string;
  t_weight : float;
  t_exec_budget : int option;
  t_jobs : int;
  t_config : Campaign.config;
  t_vm_for : int -> Vm.t;
  t_strategy_for : int -> Strategy.t;
  t_on_barrier : (now:float -> unit) option;
  t_snapshot_dir : string option;
  t_restore : Json.t option;
  t_aux : Campaign.aux option;
}

let tenant ?(weight = 1.0) ?exec_budget ?on_barrier ?snapshot_dir ?restore
    ?aux ~name ~jobs ~vm_for ~strategy_for config =
  if name = "" then invalid_arg "Scheduler.tenant: name must be non-empty";
  if not (Float.is_finite weight && weight > 0.0) then
    invalid_arg "Scheduler.tenant: weight must be finite and positive";
  (match exec_budget with
  | Some b when b < 0 -> invalid_arg "Scheduler.tenant: exec_budget must be >= 0"
  | Some _ | None -> ());
  if jobs < 1 then invalid_arg "Scheduler.tenant: jobs must be >= 1";
  {
    t_name = name;
    t_weight = weight;
    t_exec_budget = exec_budget;
    t_jobs = jobs;
    t_config = config;
    t_vm_for = vm_for;
    t_strategy_for = strategy_for;
    t_on_barrier = on_barrier;
    t_snapshot_dir = snapshot_dir;
    t_restore = restore;
    t_aux = aux;
  }

type failure = {
  fl_slice : int;  (* global slice ordinal of the failed slice *)
  fl_barrier : int;  (* tenant barrier in flight when it raised *)
  fl_generation : int;  (* 0 = first run, n = n-th retry *)
  fl_exn : string;
  fl_backtrace : string;
}

type tenant_report = {
  tr_name : string;
  tr_weight : float;
  tr_slices : int;
  tr_executions : int;  (* executions performed under this scheduler run *)
  tr_budget_exhausted : bool;
  tr_completed : bool;
  tr_quarantined : bool;
  tr_retries : int;
  tr_failures : failure list;  (* chronological *)
  tr_report : Campaign.report;
}

type report = {
  sr_tenants : tenant_report list;
  sr_slices : int;
  sr_schedule : string list;
  sr_workers : int;
  sr_metrics : Metrics.t;
}

(* One tenant's row in the live [/tenants] document — a pure projection
   of seat state, so the JSON shape can be golden-tested without a
   scheduler run. *)
type tenant_status = {
  ts_name : string;
  ts_weight : float;
  ts_state : string;
  ts_pass : float;
  ts_barrier : int;
  ts_slices : int;
  ts_executions : int;
  ts_budget_remaining : int option;
  ts_retries : int;
}

let tenant_status_json ts =
  Json.Obj
    [ ("name", Json.Str ts.ts_name);
      ("weight", Json.Num ts.ts_weight);
      ("state", Json.Str ts.ts_state);
      ("pass", Json.Num ts.ts_pass);
      ("barrier", Json.Num (float_of_int ts.ts_barrier));
      ("slices", Json.Num (float_of_int ts.ts_slices));
      ("executions", Json.Num (float_of_int ts.ts_executions));
      ( "budget_remaining",
        match ts.ts_budget_remaining with
        | None -> Json.Null
        | Some b -> Json.Num (float_of_int b) );
      ("retries", Json.Num (float_of_int ts.ts_retries))
    ]

(* State name -> gauge code for the snowplow_tenant_state series. *)
let state_code = function
  | "healthy" -> 0.0
  | "backoff" -> 1.0
  | "quarantined" -> 2.0
  | "completed" -> 3.0
  | "exhausted" -> 4.0
  | _ -> -1.0

type telemetry = {
  tm_exporter : Exporter.t;
  tm_extra : unit -> Exposition.metric list;
}

let telemetry ?(extra = fun () -> []) exporter =
  { tm_exporter = exporter; tm_extra = extra }

(* A failed tenant's lifecycle: Healthy -> (slice raises) -> Backoff,
   waiting [2^(retries-1)] scheduling rounds, -> rebuilt from its last
   good snapshot under a retry-salted label -> Healthy again; after
   [max_tenant_retries] failed generations it is evicted to the terminal
   Quarantined state and the roster keeps running without it. *)
type seat_state = Healthy | Backoff of int  (* round the retry is due *) | Quarantined

(* Per-tenant live state while the loop runs. [st_inst] is replaced on
   every retry generation; [st_done] banks the executions the discarded
   generations performed, so budgets keep charging real work. *)
type seat = {
  st_tenant : tenant;
  st_index : int;
  mutable st_inst : Campaign.instance;
  mutable st_exec0 : int;  (* instance executions at admission (restore included) *)
  mutable st_slices : int;
  mutable st_exhausted : bool;
  mutable st_state : seat_state;
  mutable st_retries : int;
  mutable st_done : int;  (* executions banked from failed generations *)
  mutable st_failures_rev : failure list;
}

let seat_executions st =
  st.st_done + Campaign.instance_executions st.st_inst - st.st_exec0

let seat_remaining st =
  match st.st_tenant.t_exec_budget with
  | None -> max_int
  | Some b -> b - seat_executions st

let seat_runnable st =
  st.st_state = Healthy
  && (not (Campaign.instance_stopped st.st_inst))
  && not st.st_exhausted

(* Stride scheduling: a tenant's pass is its next barrier's virtual time
   divided by its weight; the lowest pass runs next (ties to the lowest
   tenant index). The pass is derived entirely from the tenant's barrier
   count — no accumulated credit — so a killed-and-resumed schedule
   continues exactly where the uninterrupted one was. *)
let pass st = Campaign.instance_next_time st.st_inst /. st.st_tenant.t_weight

let by_pass a b =
  match Float.compare (pass a) (pass b) with
  | 0 -> Int.compare a.st_index b.st_index
  | c -> c

let seat_status st =
  let state =
    match st.st_state with
    | Quarantined -> "quarantined"
    | Backoff _ -> "backoff"
    | Healthy ->
      if st.st_exhausted then "exhausted"
      else if Campaign.instance_stopped st.st_inst then "completed"
      else "healthy"
  in
  {
    ts_name = st.st_tenant.t_name;
    ts_weight = st.st_tenant.t_weight;
    ts_state = state;
    ts_pass = pass st;
    ts_barrier = Campaign.instance_barrier st.st_inst;
    ts_slices = st.st_slices;
    ts_executions = seat_executions st;
    ts_budget_remaining =
      Option.map (fun _ -> seat_remaining st) st.st_tenant.t_exec_budget;
    ts_retries = st.st_retries;
  }

(* Registry counters/summaries as exposition series, prefixed and
   sanitized. Per-tenant [scheduler.tenant.*] counters are skipped —
   they are served as labelled [snowplow_tenant_*] series instead. *)
let registry_metrics m =
  let tenant_prefix = "scheduler.tenant." in
  let is_tenant name =
    String.length name >= String.length tenant_prefix
    && String.sub name 0 (String.length tenant_prefix) = tenant_prefix
  in
  let counters =
    List.filter_map
      (fun (name, v) ->
        if is_tenant name then None
        else
          Some
            (Exposition.metric Exposition.Counter
               (Exposition.sanitize_name ("snowplow_" ^ name))
               (float_of_int v)))
      (Metrics.counters m)
  in
  let summaries =
    List.concat_map
      (fun (name, (s : Metrics.summary)) ->
        let base = Exposition.sanitize_name ("snowplow_" ^ name) in
        [ Exposition.metric Exposition.Counter (base ^ "_count")
            (float_of_int s.Metrics.count);
          Exposition.metric Exposition.Gauge (base ^ "_mean") s.Metrics.mean;
          Exposition.metric Exposition.Gauge (base ^ "_max") s.Metrics.max
        ])
      (Metrics.summaries m)
  in
  counters @ summaries

let tenant_series statuses =
  List.concat_map
    (fun ts ->
      let labels = [ ("tenant", ts.ts_name) ] in
      let g ?help name v = Exposition.metric ?help ~labels Exposition.Gauge name v in
      let c name v = Exposition.metric ~labels Exposition.Counter name v in
      [ g ~help:"stride pass (next barrier virtual time / weight)"
          "snowplow_tenant_pass" ts.ts_pass;
        g
          ~help:
            "seat state: 0 healthy, 1 backoff, 2 quarantined, 3 completed, \
             4 exhausted"
          "snowplow_tenant_state" (state_code ts.ts_state);
        g "snowplow_tenant_barrier" (float_of_int ts.ts_barrier);
        c "snowplow_tenant_slices" (float_of_int ts.ts_slices);
        c "snowplow_tenant_executions" (float_of_int ts.ts_executions);
        g ~help:"retry generations started"
          "snowplow_tenant_retry_generation" (float_of_int ts.ts_retries)
      ]
      @
      match ts.ts_budget_remaining with
      | None -> []
      | Some b ->
        [ g ~help:"exec budget remaining" "snowplow_tenant_budget_remaining"
            (float_of_int b)
        ])
    statuses

let health_json ~running ~workers ~slices statuses =
  let count state =
    List.length (List.filter (fun ts -> ts.ts_state = state) statuses)
  in
  let quarantined = count "quarantined" in
  let status =
    if quarantined = List.length statuses then "failed"
    else if quarantined > 0 || count "backoff" > 0 then "degraded"
    else "ok"
  in
  Json.Obj
    [ ("status", Json.Str status);
      ("running", Json.Bool running);
      ("workers", Json.Num (float_of_int workers));
      ("slices", Json.Num (float_of_int slices));
      ( "tenants",
        Json.Obj
          (List.map
             (fun s -> (s, Json.Num (float_of_int (count s))))
             [ "healthy"; "backoff"; "quarantined"; "completed"; "exhausted" ])
      )
    ]

(* Tenant [i] owns trace pids [100 * (i + 1) ..]: disjoint from the
   scheduler lane (pid 0) and the shared pool workers (100_001 + w) for
   any plausible jobs count. *)
let tenant_pid_base i = 100 * (i + 1)

let pool_worker_pid w = 100_001 + w

let run ?workers ?(trace = Trace.disabled) ?timeseries ?max_slices
    ?(faults = Faults.disabled) ?(max_tenant_retries = 3)
    ?(events = Events.null) ?telemetry:tele tenants =
  Json.Decode.run (fun () ->
      if max_tenant_retries < 0 then
        invalid_arg "Scheduler.run: max_tenant_retries must be >= 0";
      if tenants = [] then
        invalid_arg "Scheduler.run: at least one tenant required";
      let names = Hashtbl.create 8 in
      List.iter
        (fun t ->
          if Hashtbl.mem names t.t_name then
            invalid_arg
              (Printf.sprintf "Scheduler.run: duplicate tenant name %S"
                 t.t_name);
          Hashtbl.add names t.t_name ())
        tenants;
      let workers =
        match workers with
        | Some w ->
          if w < 1 then invalid_arg "Scheduler.run: workers must be >= 1";
          w
        | None -> List.fold_left (fun acc t -> max acc t.t_jobs) 1 tenants
      in
      let metrics = Metrics.create () in
      let sched_tracer = Trace.tracer trace ~pid:0 ~name:"scheduler" in
      (* All instances are built (and restore snapshots validated) before
         any slice runs, so a bad tenant fails the whole launch instead
         of dying mid-schedule. *)
      let build_instance ~label t i restore =
        Campaign.create_instance ?snapshot_dir:t.t_snapshot_dir ?restore
          ?on_barrier:t.t_on_barrier ~trace ?aux:t.t_aux
          ~pid_base:(tenant_pid_base i) ~label ~faults ~events ~jobs:t.t_jobs
          ~vm_for:t.t_vm_for ~strategy_for:t.t_strategy_for t.t_config
      in
      let seats =
        List.mapi
          (fun i t ->
            (match t.t_restore with
            | Some snap ->
              Campaign.validate_snapshot ~snapshot:snap ~jobs:t.t_jobs
                t.t_config
            | None -> ());
            let inst = build_instance ~label:t.t_name t i t.t_restore in
            {
              st_tenant = t;
              st_index = i;
              st_inst = inst;
              st_exec0 = Campaign.instance_executions inst;
              st_slices = 0;
              st_exhausted = false;
              st_state = Healthy;
              st_retries = 0;
              st_done = 0;
              st_failures_rev = [];
            })
          tenants
      in
      (* Rebuild a failed tenant from its newest valid on-disk snapshot
         (falling back to its original restore document, then to a fresh
         start). The retry generation salts the instance label, which
         prefixes its fault sites — so a scheduled fault that killed
         generation 0 does not automatically re-kill generation 1 unless
         the plan addresses [name#1/...] too. *)
      let rebuild st =
        let t = st.st_tenant in
        let label =
          if st.st_retries = 0 then t.t_name
          else Printf.sprintf "%s#%d" t.t_name st.st_retries
        in
        let restore =
          match t.t_snapshot_dir with
          | Some dir -> (
            match Snapshot.latest_valid ~events ~dir () with
            | Some (_, _, doc) ->
              Campaign.validate_snapshot ~snapshot:doc ~jobs:t.t_jobs
                t.t_config;
              Some doc
            | None -> t.t_restore)
          | None -> t.t_restore
        in
        (* Bank the dead generation's work before discarding it, so
           [seat_executions] (and with it the budget) never rolls back.
           Re-baseline [st_exec0] immediately: if [build_instance] raises
           (corrupt snapshot), the seat still points at the old instance
           and must not double-charge its work. *)
        st.st_done <-
          st.st_done + Campaign.instance_executions st.st_inst - st.st_exec0;
        st.st_exec0 <- Campaign.instance_executions st.st_inst;
        let inst = build_instance ~label t st.st_index restore in
        st.st_inst <- inst;
        st.st_exec0 <- Campaign.instance_executions inst
      in
      let refresh_exhausted st =
        if (not st.st_exhausted) && seat_remaining st <= 0 then begin
          st.st_exhausted <- true;
          Events.log events ~kind:"scheduler.budget_exhausted"
            [ ("tenant", Json.Str st.st_tenant.t_name);
              ("executions", Json.Num (float_of_int (seat_executions st)))
            ]
        end
      in
      List.iter refresh_exhausted seats;
      let total_slices = ref 0 in
      let total_execs = ref 0 in
      let schedule_rev = ref [] in
      let pool_metrics = Metrics.create () in
      (* Telemetry publication: project seat state into an immutable,
         prerendered payload and swap it into the exporter. Runs on this
         (the scheduling) domain only, at barrier granularity — reads
         nothing a worker writes and writes nothing a slice reads, so an
         armed exporter cannot perturb the schedule or any campaign. *)
      let publish ~running () =
        match tele with
        | None -> ()
        | Some tm ->
          let statuses = List.map seat_status seats in
          Exporter.publish tm.tm_exporter
            {
              Exporter.p_metrics =
                registry_metrics metrics @ tenant_series statuses
                @ tm.tm_extra ();
              p_health =
                health_json ~running ~workers ~slices:!total_slices statuses;
              p_tenants = Json.Arr (List.map tenant_status_json statuses);
            }
      in
      Events.log events ~kind:"scheduler.start"
        [ ("tenants", Json.Num (float_of_int (List.length tenants)));
          ("workers", Json.Num (float_of_int workers))
        ];
      publish ~running:true ();
      Pool.with_pool ~metrics:pool_metrics ~faults
        ~tracer_for:(fun w ->
          Trace.tracer trace ~pid:(pool_worker_pid w)
            ~name:(Printf.sprintf "pool-worker-%d" w))
        ~workers
        (fun pool ->
          let slices_left () =
            match max_slices with
            | None -> max_int
            | Some m -> m - !total_slices
          in
          let round = ref 0 in
          (* A raising slice (or rebuild) lands here: capture the
             forensics, then either schedule a retry after an
             exponential backoff (1, 2, 4... rounds) or — once the
             retry budget is spent — evict the tenant to the terminal
             Quarantined state. The roster keeps running either way. *)
          let handle_failure st ~slice_no e bt =
            Tracer.span sched_tracer "scheduler.quarantine" (fun () ->
                let barrier = Campaign.instance_barrier st.st_inst in
                let fl =
                  {
                    fl_slice = slice_no;
                    fl_barrier = barrier;
                    fl_generation = st.st_retries;
                    fl_exn = Printexc.to_string e;
                    fl_backtrace = Printexc.raw_backtrace_to_string bt;
                  }
                in
                st.st_failures_rev <- fl :: st.st_failures_rev;
                Metrics.incr metrics "scheduler.failures";
                Metrics.incr metrics
                  (Printf.sprintf "scheduler.tenant.%s.failures"
                     st.st_tenant.t_name);
                (* Forensic record beside the snapshots; best-effort —
                   diagnostics must never take the roster down. *)
                (match st.st_tenant.t_snapshot_dir with
                | Some dir -> (
                  try
                    ignore
                      (Snapshot.write_failure ~dir ~barrier
                         ~generation:st.st_retries
                         (Json.Obj
                            [ ("format", Json.Str "snowplow-tenant-failure");
                              ("tenant", Json.Str st.st_tenant.t_name);
                              ("barrier", Json.Num (float_of_int barrier));
                              ("slice", Json.Num (float_of_int slice_no));
                              ( "generation",
                                Json.Num (float_of_int st.st_retries) );
                              ("exn", Json.Str fl.fl_exn);
                              ("backtrace", Json.Str fl.fl_backtrace)
                            ]))
                  with _ -> ())
                | None -> ());
                Events.log events ~level:Events.Error ~kind:"scheduler.failure"
                  [ ("tenant", Json.Str st.st_tenant.t_name);
                    ("slice", Json.Num (float_of_int slice_no));
                    ("barrier", Json.Num (float_of_int barrier));
                    ("generation", Json.Num (float_of_int st.st_retries));
                    ("exn", Json.Str fl.fl_exn)
                  ];
                if st.st_retries >= max_tenant_retries then begin
                  st.st_state <- Quarantined;
                  Metrics.incr metrics "scheduler.quarantined";
                  Events.log events ~level:Events.Error
                    ~kind:"scheduler.quarantine"
                    [ ("tenant", Json.Str st.st_tenant.t_name);
                      ("generations", Json.Num (float_of_int (st.st_retries + 1)))
                    ]
                end
                else begin
                  st.st_retries <- st.st_retries + 1;
                  st.st_state <- Backoff (!round + (1 lsl (st.st_retries - 1)));
                  Events.log events ~level:Events.Warn ~kind:"scheduler.backoff"
                    [ ("tenant", Json.Str st.st_tenant.t_name);
                      ("generation", Json.Num (float_of_int st.st_retries));
                      ( "due_round",
                        Json.Num
                          (float_of_int (!round + (1 lsl (st.st_retries - 1)))) )
                    ]
                end;
                if Faults.enabled faults then
                  Tracer.counter sched_tracer "faults.injected"
                    (float_of_int (Faults.injected faults)))
          in
          let continue = ref true in
          while !continue do
            incr round;
            (* Promote due backoff seats: rebuild from the last good
               snapshot. A rebuild that itself raises counts as another
               failure of the same tenant. *)
            List.iter
              (fun st ->
                match st.st_state with
                | Backoff due when !round >= due -> (
                  match rebuild st with
                  | () ->
                    st.st_state <- Healthy;
                    Events.log events ~kind:"scheduler.retry"
                      [ ("tenant", Json.Str st.st_tenant.t_name);
                        ("generation", Json.Num (float_of_int st.st_retries));
                        ( "barrier",
                          Json.Num
                            (float_of_int
                               (Campaign.instance_barrier st.st_inst)) )
                      ]
                  | exception e ->
                    let bt = Printexc.get_raw_backtrace () in
                    handle_failure st ~slice_no:!total_slices e bt)
                | Backoff _ | Healthy | Quarantined -> ())
              seats;
            let runnable = List.filter seat_runnable seats in
            let waiting =
              List.exists
                (fun st ->
                  match st.st_state with Backoff _ -> true | _ -> false)
                seats
            in
            if (runnable = [] && not waiting) || slices_left () <= 0 then
              continue := false
            else if runnable = [] then
              (* Everyone alive is waiting out a backoff: skip the round.
                 Rounds are pure bookkeeping, so this converges to the
                 earliest due round immediately. *)
              ()
            else begin
              (* Admission batch: walk the stride order, admitting while
                 the batch's summed jobs fit the pool. The head of the
                 order is always admitted — even a tenant with
                 jobs > workers makes progress (its shards just queue) —
                 so the scheduler is work-conserving by construction.
                 The batch is computed from tenant state alone (not the
                 live [Pool.in_flight], which races with completing
                 workers), keeping the schedule itself deterministic. *)
              let order = List.stable_sort by_pass runnable in
              let admitted = ref [] in
              let batch_jobs = ref 0 in
              List.iteri
                (fun k st ->
                  if
                    slices_left () > 0
                    && (k = 0 || !batch_jobs + st.st_tenant.t_jobs <= workers)
                  then begin
                    batch_jobs := !batch_jobs + st.st_tenant.t_jobs;
                    let max_execs =
                      match st.st_tenant.t_exec_budget with
                      | None -> None
                      | Some _ -> Some (seat_remaining st)
                    in
                    (* Baseline before any of this slice's work is
                       submitted: workers run concurrently with this
                       domain, so reading it any later would race with
                       the slice's own executions. *)
                    let exec_before = seat_executions st in
                    let slice =
                      Campaign.begin_slice st.st_inst ~pool ?max_execs ()
                    in
                    schedule_rev := st.st_tenant.t_name :: !schedule_rev;
                    incr total_slices;
                    admitted := (st, exec_before, !total_slices, slice) :: !admitted
                  end)
                order;
              (* Completions fold on this domain, in admission order:
                 tenants are independent, so the order only affects
                 wall-clock overlap, never any tenant's state. *)
              (* Every admitted slice completes even when one raises:
                 [complete_slice] quiesces its own shards before the
                 exception escapes, the handler below contains it, and
                 the iteration moves on to the next tenant. *)
              List.iter
                (fun (st, exec_before, slice_no, slice) ->
                  Tracer.span sched_tracer "scheduler.slice" (fun () ->
                      match Campaign.complete_slice st.st_inst slice with
                      | exception e ->
                        let bt = Printexc.get_raw_backtrace () in
                        let delta = seat_executions st - exec_before in
                        total_execs := !total_execs + delta;
                        Metrics.incr ~by:delta metrics "scheduler.execs_total";
                        Metrics.incr ~by:delta metrics
                          (Printf.sprintf "scheduler.tenant.%s.execs"
                             st.st_tenant.t_name);
                        handle_failure st ~slice_no e bt;
                        publish ~running:true ()
                      | () ->
                        let delta = seat_executions st - exec_before in
                        st.st_slices <- st.st_slices + 1;
                        total_execs := !total_execs + delta;
                        refresh_exhausted st;
                        Metrics.incr metrics "scheduler.slices";
                        Metrics.incr ~by:delta metrics "scheduler.execs_total";
                        Metrics.incr metrics
                          (Printf.sprintf "scheduler.tenant.%s.slices"
                             st.st_tenant.t_name);
                        Metrics.incr ~by:delta metrics
                          (Printf.sprintf "scheduler.tenant.%s.execs"
                             st.st_tenant.t_name);
                        Tracer.counter sched_tracer "execs_total"
                          (float_of_int !total_execs);
                        if Faults.enabled faults then
                          Tracer.counter sched_tracer "faults.injected"
                            (float_of_int (Faults.injected faults));
                        (match timeseries with
                        | None -> ()
                        | Some ts ->
                          (* The slice ordinal is the time axis: strictly
                             monotone and schedule-deterministic. *)
                          Timeseries.sample ts
                            ~time:(float_of_int !total_slices)
                            [
                              ("tenant", float_of_int st.st_index);
                              ( "tenant_barrier",
                                float_of_int
                                  (Campaign.instance_barrier st.st_inst) );
                              ( "tenant_execs",
                                float_of_int (seat_executions st) );
                              ("execs_total", float_of_int !total_execs);
                            ]);
                        Events.log events ~level:Events.Debug
                          ~kind:"scheduler.slice"
                          [ ("tenant", Json.Str st.st_tenant.t_name);
                            ("slice", Json.Num (float_of_int slice_no));
                            ( "barrier",
                              Json.Num
                                (float_of_int
                                   (Campaign.instance_barrier st.st_inst)) );
                            ("execs", Json.Num (float_of_int delta));
                            ( "execs_total",
                              Json.Num (float_of_int !total_execs) )
                          ];
                        publish ~running:true ()))
                (List.rev !admitted)
            end
          done);
      Metrics.merge_into ~dst:metrics pool_metrics;
      (* Final payload after the pool merge, so the last scrape also
         carries the pool.tasks / pool.steals counters. *)
      publish ~running:false ();
      Events.log events ~kind:"scheduler.finish"
        [ ("slices", Json.Num (float_of_int !total_slices));
          ("execs_total", Json.Num (float_of_int !total_execs))
        ];
      let sr_tenants =
        List.map
          (fun st ->
            {
              tr_name = st.st_tenant.t_name;
              tr_weight = st.st_tenant.t_weight;
              tr_slices = st.st_slices;
              tr_executions = seat_executions st;
              tr_budget_exhausted = st.st_exhausted;
              tr_completed =
                st.st_state = Healthy
                && Campaign.instance_stopped st.st_inst;
              tr_quarantined = st.st_state = Quarantined;
              tr_retries = st.st_retries;
              tr_failures = List.rev st.st_failures_rev;
              tr_report = Campaign.finish_instance st.st_inst;
            })
          seats
      in
      {
        sr_tenants;
        sr_slices = !total_slices;
        sr_schedule = List.rev !schedule_rev;
        sr_workers = workers;
        sr_metrics = metrics;
      })
