(** Simulated test-execution environment.

    Stands in for the paper's fleet of QEMU VMs: executes a test against the
    kernel from a pristine snapshot, charges virtual time per execution, and
    charges a much larger restart penalty when the guest kernel crashes
    (Syzkaller must reboot the VM). Optionally injects the coverage
    nondeterminism of a stock setup (§3.1) — Snowplow's data-collection
    executor runs with [noise = 0]. *)

type t

val create :
  ?noise:float ->
  ?execs_per_second:float ->
  ?fleet_scale:float ->
  ?crash_restart_s:float ->
  seed:int ->
  Sp_kernel.Kernel.t ->
  t
(** Defaults: noise 0, 390 execs/s (the paper's whole-fleet Syzkaller
    throughput, 42 VMs), fleet_scale 96 (we simulate a fleet 96x smaller —
    well under one VM-equivalent — so a 24-hour campaign stays tractable; every relative
    timing is preserved because both compared systems scale identically),
    0.7 s crash-restart penalty — the whole-fleet cost of rebooting one
    of 42 VMs for 30 s, which is what a guest crash costs the paper's
    setup. *)

val kernel : t -> Sp_kernel.Kernel.t

val set_metrics : t -> Sp_util.Metrics.t -> unit
(** Attach a metrics registry; the VM then records [vm.*] counters
    (executions, crash restarts, duplicate skips) and histograms (virtual
    cost per execution, CPU time per execution). No metrics are recorded
    before a registry is attached — [Campaign.run] attaches its own. *)

val run : t -> Clock.t -> Sp_syzlang.Prog.t -> Sp_kernel.Kernel.result
(** Execute and advance the clock by the execution cost (plus the restart
    penalty on crash). *)

val run_free : t -> Sp_syzlang.Prog.t -> Sp_kernel.Kernel.result
(** Execute without charging time (used by offline analyses). *)

val charge_duplicate : t -> Clock.t -> unit
(** Charge the (small) cost of recognizing an already-executed program
    without running it. *)

val executions : t -> int

val set_throughput_factor : t -> float -> unit
(** Scale the per-test cost; Snowplow runs at 383/390 of Syzkaller's
    throughput (§5.5). *)
