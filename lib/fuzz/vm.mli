(** Simulated test-execution environment.

    Stands in for the paper's fleet of QEMU VMs: executes a test against the
    kernel from a pristine snapshot, charges virtual time per execution, and
    charges a much larger restart penalty when the guest kernel crashes
    (Syzkaller must reboot the VM). Optionally injects the coverage
    nondeterminism of a stock setup (§3.1) — Snowplow's data-collection
    executor runs with [noise = 0]. *)

type t

val create :
  ?noise:float ->
  ?execs_per_second:float ->
  ?fleet_scale:float ->
  ?crash_restart_s:float ->
  seed:int ->
  Sp_kernel.Kernel.t ->
  t
(** Defaults: noise 0, 390 execs/s (the paper's whole-fleet Syzkaller
    throughput, 42 VMs), fleet_scale 96 (we simulate a fleet 96x smaller —
    well under one VM-equivalent — so a 24-hour campaign stays tractable; every relative
    timing is preserved because both compared systems scale identically),
    0.7 s crash-restart penalty — the whole-fleet cost of rebooting one
    of 42 VMs for 30 s, which is what a guest crash costs the paper's
    setup. *)

val kernel : t -> Sp_kernel.Kernel.t

val scratch : t -> Sp_kernel.Kernel.scratch
(** The VM's owned execution scratch. Each VM has exactly one, created at
    [create]; since one VM serves one campaign shard (one domain), the
    campaign's allocation-free path executes into it via {!run_raw} and
    reads the [Kernel.scratch_*] views before the next execution. *)

val set_metrics : t -> Sp_util.Metrics.t -> unit
(** Attach a metrics registry; the VM then records [vm.*] counters
    (executions, crash restarts, duplicate skips) and histograms:
    [vm.exec_virtual_s] (virtual cost per execution) and
    [vm.exec_wall_s] (wall-clock time per execution — wall, not CPU,
    because one VM serves one shard domain and [Sys.time] is process-wide
    under [Campaign.run_parallel]). No metrics are recorded before a
    registry is attached — [Campaign.run] attaches its own. *)

val set_tracer : t -> Sp_obs.Tracer.t -> unit
(** Attach the owning shard's tracer; the VM then records a
    [vm.crash_restart] instant per guest-kernel crash (executions
    themselves are far too hot to trace individually). Defaults to the
    disabled tracer. *)

val run : t -> Clock.t -> Sp_syzlang.Prog.t -> Sp_kernel.Kernel.result
(** Execute and advance the clock by the execution cost (plus the restart
    penalty on crash). *)

val run_raw : t -> Clock.t -> Sp_syzlang.Prog.t -> unit
(** [run], minus the materialized result: executes into the VM's own
    {!scratch} and charges the clock identically. The caller reads the
    outcome through [Kernel.scratch_*] views on [scratch t], which stay
    valid until this VM's next execution. The campaign ingest path uses
    this to keep the steady-state loop allocation-free. *)

val run_free : t -> Sp_syzlang.Prog.t -> Sp_kernel.Kernel.result
(** Execute without charging time (used by offline analyses). *)

val charge_duplicate : t -> Clock.t -> unit
(** Charge the (small) cost of recognizing an already-executed program
    without running it. *)

val executions : t -> int

val state_json : t -> Sp_obs.Json.t
(** Mutable state for campaign snapshots: the execution counter and the
    noise RNG stream. The rest of the VM (kernel, cost model, throughput
    factor) is reconstructed from the campaign config on resume. *)

val restore_state : t -> Sp_obs.Json.t -> unit
(** Restore state captured by {!state_json} into a freshly created VM.
    Raises [Sp_obs.Json.Decode.Error] on malformed input. *)

val set_throughput_factor : t -> float -> unit
(** Scale the per-test cost; Snowplow runs at 383/390 of Syzkaller's
    throughput (§5.5). *)
