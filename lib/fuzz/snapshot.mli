(** Campaign snapshot files: the corpus codec and on-disk layout.

    A snapshot is one JSON document capturing the merged campaign state at
    a barrier of the sharded executor (see DESIGN.md): campaign-level
    counters and series, the global corpus/accumulator/triage, and each
    shard's private stream state. [Campaign] assembles and consumes the
    document; this module owns the pieces that are not private to
    [Campaign] — the corpus entry codec and the snapshot directory
    layout ([snapshot-NNNNNN.json] per barrier, written atomically so a
    kill mid-write never leaves a torn file; the previous snapshot
    survives). *)

val format_version : int

val entry_to_json : Corpus.entry -> Sp_obs.Json.t

val entry_of_json :
  parse:(string -> (Sp_syzlang.Prog.t, string) result) ->
  Sp_obs.Json.t ->
  Corpus.entry
(** Raises [Sp_obs.Json.Decode.Error] on malformed input. *)

val corpus_to_json : Corpus.t -> Sp_obs.Json.t
(** Entries in insertion order (oldest first), so re-adding them in list
    order reproduces the corpus — dedup index and directed distance tiers
    included. *)

val corpus_entries_of_json :
  parse:(string -> (Sp_syzlang.Prog.t, string) result) ->
  Sp_obs.Json.t ->
  Corpus.entry list
(** Insertion order. Raises [Sp_obs.Json.Decode.Error] on malformed
    input. *)

val path : dir:string -> barrier:int -> string
(** [snapshot-NNNNNN.json] under [dir]. *)

val write :
  ?inject:(unit -> unit) -> dir:string -> barrier:int -> Sp_obs.Json.t -> string
(** Atomically write a barrier snapshot (creating [dir] if needed);
    returns the path written. [inject] is {!Sp_obs.Io.write_atomic}'s
    fault hook: raising from it models a crash mid-write (previous
    snapshot survives, no torn file). *)

val failure_path : dir:string -> barrier:int -> generation:int -> string
(** [failure-NNNNNN-gG.json] under [dir] — the quarantine forensic
    record the scheduler writes when a tenant's slice raises. The name
    deliberately does not match the snapshot shape, so {!latest} /
    {!latest_valid} never pick one up. *)

val write_failure :
  dir:string -> barrier:int -> generation:int -> Sp_obs.Json.t -> string
(** Atomically write a failure record (creating [dir] if needed);
    returns the path written. *)

val read : string -> (Sp_obs.Json.t, string) result
(** Read and parse a snapshot file. *)

val latest : dir:string -> (int * string) option
(** Highest barrier snapshot in [dir] as [(barrier, path)], matching
    only the [snapshot-NNNNNN.json] name shape; [None] when the
    directory is missing, unreadable or holds no snapshots. *)

val latest_valid :
  ?events:Sp_obs.Events.t ->
  dir:string ->
  unit ->
  (int * string * Sp_obs.Json.t) option
(** Like {!latest}, but skips backwards past snapshots that fail to read
    or parse, returning the newest one that yields a JSON document —
    what resume paths use so one corrupt or truncated file cannot strand
    a campaign. Each skip is reported as a Warn [snapshot.corrupt] event
    when [events] is wired, or a stderr warning otherwise. [None] when
    no snapshot parses. Structural validity (config echo, version) is
    still the caller's job, via [Campaign.validate_snapshot]. *)
