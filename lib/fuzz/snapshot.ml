module Json = Sp_obs.Json
module Io = Sp_obs.Io
module Prog = Sp_syzlang.Prog
module Accum = Sp_coverage.Accum

(* Version 2 added the always-present "aux" field (strategy-side state:
   the snowplow inference/funnel/prediction caches; [Null] for stateless
   strategies). Version-1 documents lack it and are rejected. *)
let format_version = 2

let entry_to_json (e : Corpus.entry) =
  Json.Obj
    [ ("prog", Json.Str (Prog.to_string e.Corpus.prog));
      ("blocks", Accum.bitset_to_json e.Corpus.blocks);
      ("edges", Accum.bitset_to_json e.Corpus.edges);
      ("added_at", Json.Num e.Corpus.added_at)
    ]

let entry_of_json ~parse j =
  let open Json.Decode in
  let text = str_field "prog" j in
  let prog =
    match parse text with
    | Ok p -> p
    | Error msg -> error "corpus entry: %s" msg
  in
  {
    Corpus.prog;
    blocks = Accum.bitset_of_json (field "blocks" j);
    edges = Accum.bitset_of_json (field "edges" j);
    added_at = num_field "added_at" j;
  }

(* Entries oldest-first (insertion order): restore re-adds them in the
   original order, which rebuilds the dedup index and the directed
   distance tiers exactly as the uninterrupted run had them. *)
let corpus_to_json c =
  Json.Arr (List.rev_map entry_to_json (Corpus.entries c))

let corpus_entries_of_json ~parse j =
  match j with
  | Json.Arr items -> List.map (entry_of_json ~parse) items
  | _ -> Json.Decode.error "corpus: expected array"

let path ~dir ~barrier = Filename.concat dir (Printf.sprintf "snapshot-%06d.json" barrier)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    (try Sys.mkdir dir 0o755 with Sys_error _ when Sys.is_directory dir -> ())
  end

let write ?inject ~dir ~barrier json =
  mkdir_p dir;
  let p = path ~dir ~barrier in
  Io.write_atomic ?inject p (Json.to_string json);
  p

(* Failure forensics live next to the snapshots but under a name the
   resume scan does not match, so a quarantine record can never be
   mistaken for campaign state. The generation suffix keeps a retry that
   fails at the same barrier from overwriting the original record. *)
let failure_path ~dir ~barrier ~generation =
  Filename.concat dir
    (Printf.sprintf "failure-%06d-g%d.json" barrier generation)

let write_failure ~dir ~barrier ~generation json =
  mkdir_p dir;
  let p = failure_path ~dir ~barrier ~generation in
  Io.write_atomic p (Json.to_string json);
  p

let read file =
  match Io.read_file file with
  | exception Sys_error msg -> Error msg
  | data -> Json.of_string data

(* Highest-numbered snapshot in [dir]: what `--resume` continues from.
   Matching on the exact file-name shape (not lexicographic order of
   everything in the directory) keeps temp files and strangers out. *)
let latest ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> None
  | names ->
    Array.fold_left
      (fun best name ->
        match Scanf.sscanf_opt name "snapshot-%06d.json%!" (fun b -> b) with
        | Some b when (match best with None -> true | Some (b0, _) -> b > b0)
          ->
          Some (b, Filename.concat dir name)
        | Some _ | None -> best)
      None names

(* All snapshots in [dir], highest barrier first. *)
let all_desc ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun name ->
           match Scanf.sscanf_opt name "snapshot-%06d.json%!" (fun b -> b) with
           | Some b -> Some (b, Filename.concat dir name)
           | None -> None)
    |> List.sort (fun (a, _) (b, _) -> compare b a)

let latest_valid ?(events = Sp_obs.Events.null) ~dir () =
  let rec scan = function
    | [] -> None
    | (barrier, file) :: older -> (
      match read file with
      | Ok doc -> Some (barrier, file, doc)
      | Error msg ->
        (* A torn or corrupt newest snapshot must not strand the whole
           campaign: warn and fall back to the one before it. The
           warning goes to the structured event log when one is wired,
           to stderr otherwise — never both. *)
        if Sp_obs.Events.enabled events then
          Sp_obs.Events.log events ~level:Sp_obs.Events.Warn
            ~kind:"snapshot.corrupt"
            [ ("file", Sp_obs.Json.Str file);
              ("barrier", Sp_obs.Json.Num (float_of_int barrier));
              ("error", Sp_obs.Json.Str msg)
            ]
        else
          Printf.eprintf
            "warning: skipping corrupt snapshot %s (%s); trying the previous \
             one\n%!"
            file msg;
        scan older)
  in
  scan (all_desc ~dir)
