(** Dense row-major float64 matrices — the storage layer of the
    from-scratch ML stack (the paper's PyTorch/fairseq substitute).

    Storage is a C-layout [Bigarray.Array1] (off the OCaml heap), with a
    rows/cols view on top; vectors are [1 x n] rows. Operations either
    allocate a result or, where named [_into], write into a
    caller-provided destination so hot loops stay allocation-free.

    Allocation draws from the domain's ambient {!Workspace} when one is
    active (initializers excepted — parameters must outlive workspace
    generations), so wrapping a train/inference step in
    [Workspace.with_active] makes the whole stack reuse warm buffers.

    Float semantics are frozen against {!Reference}: same IEEE
    operations, same order — swapping the storage changed no result
    byte. *)

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private { rows : int; cols : int; data : buffer }

val create : int -> int -> t
(** Zero-filled. *)

val make : int -> int -> float -> t

val of_array : rows:int -> cols:int -> float array -> t
(** Copies the array into fresh storage. Raises [Invalid_argument] on a
    size mismatch. *)

val of_row : float array -> t

val to_array : t -> float array
(** Row-major copy of the contents. *)

val copy : t -> t

val copy_into : dst:t -> t -> unit
(** Same shape. *)

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val dims : t -> int * int

val numel : t -> int

val fill : t -> float -> unit

val glorot : Sp_util.Rng.t -> int -> int -> t
(** Glorot/Xavier-uniform initialization. Always heap-allocates (never
    from a workspace): parameters outlive generations. *)

val randn : Sp_util.Rng.t -> float -> int -> int -> t
(** Gaussian init with the given standard deviation; heap-allocates like
    {!glorot}. *)

val add : t -> t -> t
(** Same shape, or [b] a [1 x cols] row broadcast over [a]'s rows. *)

val add_into : dst:t -> t -> unit
(** [dst += src], same-shape or row-broadcast. *)

val sub : t -> t -> t

val sub_into : dst:t -> t -> t -> unit
(** [dst <- a - b] element-wise ([dst] may alias [a] or [b]). *)

val mul : t -> t -> t
(** Element-wise. *)

val mul_into : dst:t -> t -> t -> unit
(** [dst <- a * b] element-wise ([dst] may alias [a] or [b]). *)

val scale : float -> t -> t

val scale_into : dst:t -> float -> t -> unit
(** [dst <- s * src] ([dst] may alias [src]). *)

val axpy : alpha:float -> t -> t -> unit
(** [axpy ~alpha x y]: [y += alpha * x], same shape. *)

val colsum_into : dst:t -> t -> unit
(** [dst += column sums of src] ([dst] is [1 x cols]), accumulated in
    ascending-row order. *)

val map : (float -> float) -> t -> t

val map_into : dst:t -> (float -> float) -> t -> unit
(** [dst <- f src] element-wise ([dst] may alias [src]). *)

val matmul : t -> t -> t

val matmul_into : dst:t -> t -> t -> unit
(** [dst += a*b]; [dst] must be pre-sized (and zeroed for a plain
    product). *)

val matmul_tn : t -> t -> t
(** [transpose a * b] without materializing the transpose. *)

val matmul_tn_into : dst:t -> t -> t -> unit
(** [dst += transpose a * b], accumulated in ascending-row order of [a]
    — the gradient-accumulation order of a per-sample loop. *)

val matmul_nt : t -> t -> t
(** [a * transpose b]. *)

val matmul_nt_into : dst:t -> t -> t -> unit
(** [dst <- a * transpose b] (overwrites). *)

val transpose : t -> t

val row : t -> int -> t
(** Zero-copy [1 x cols] view of one row — writes through to the parent. *)

val rows_view : t -> int -> int -> t
(** [rows_view t start n]: zero-copy [n x cols] view of rows
    [start..start+n-1]. *)

val sum : t -> float

val frobenius : t -> float
(** L2 norm of all entries. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
