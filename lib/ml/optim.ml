(* Gradients are shaped like their parameters by construction (Ad.accum
   checks on first touch), so the update loops index unchecked. *)
module A1 = Bigarray.Array1

type algo =
  | Adam of {
      beta1 : float;
      beta2 : float;
      eps : float;
      weight_decay : float;
      m : float array array;
      v : float array array;
      mutable step_count : int;
    }
  | Sgd of { momentum : float; vel : float array array }

type t = { params : Ad.t array; mutable lr : float; algo : algo }

let slot_arrays params =
  Array.map (fun p -> Array.make (Tensor.numel (Ad.value p)) 0.0) params

let adam ?(lr = 1e-3) ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8)
    ?(weight_decay = 0.0) params =
  let params = Array.of_list params in
  {
    params;
    lr;
    algo =
      Adam
        { beta1; beta2; eps; weight_decay; m = slot_arrays params;
          v = slot_arrays params; step_count = 0 };
  }

let sgd ?(lr = 1e-2) ?(momentum = 0.0) params =
  let params = Array.of_list params in
  { params; lr; algo = Sgd { momentum; vel = slot_arrays params } }

let step t =
  match t.algo with
  | Adam a ->
    a.step_count <- a.step_count + 1;
    let bc1 = 1.0 -. (a.beta1 ** float_of_int a.step_count) in
    let bc2 = 1.0 -. (a.beta2 ** float_of_int a.step_count) in
    Array.iteri
      (fun pi p ->
        match Ad.grad_opt p with
        | None -> ()
        | Some g ->
          let data = (Ad.value p).Tensor.data and gd = g.Tensor.data in
          let m = a.m.(pi) and v = a.v.(pi) in
          for i = 0 to Bigarray.Array1.dim data - 1 do
            let gi = A1.unsafe_get gd i +. (a.weight_decay *. A1.unsafe_get data i) in
            m.(i) <- (a.beta1 *. m.(i)) +. ((1.0 -. a.beta1) *. gi);
            v.(i) <- (a.beta2 *. v.(i)) +. ((1.0 -. a.beta2) *. gi *. gi);
            let mhat = m.(i) /. bc1 and vhat = v.(i) /. bc2 in
            A1.unsafe_set data i (A1.unsafe_get data i -. (t.lr *. mhat /. (sqrt vhat +. a.eps)))
          done)
      t.params
  | Sgd s ->
    Array.iteri
      (fun pi p ->
        match Ad.grad_opt p with
        | None -> ()
        | Some g ->
          let data = (Ad.value p).Tensor.data and gd = g.Tensor.data in
          let vel = s.vel.(pi) in
          for i = 0 to Bigarray.Array1.dim data - 1 do
            vel.(i) <- (s.momentum *. vel.(i)) +. A1.unsafe_get gd i;
            A1.unsafe_set data i (A1.unsafe_get data i -. (t.lr *. vel.(i)))
          done)
      t.params

let zero_grad t = Array.iter Ad.zero_grad t.params

let set_lr t lr = t.lr <- lr

let lr t = t.lr
