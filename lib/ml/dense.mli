(** Batched, preallocated MLP fast path — minibatch striping in its
    purest form (DESIGN.md §13).

    A 2-layer ReLU MLP trained with MSE + Adam where every activation,
    gradient and optimizer slot is allocated once up front: a
    steady-state {!train_step} allocates ~0 minor words. A batch is
    evaluated as whole-matrix ops (one matmul per layer, not one per
    sample), and {!train_step_striped} shards the batch's rows into
    contiguous stripes evaluated in parallel on {!Sp_util.Pool} domains,
    with gradients reduced in stripe order — byte-deterministic for a
    fixed (seed, stripe count).

    The math matches {!Reference.Mlp} operation for operation (the
    batched kernels accumulate in the per-sample loop's order), which is
    what bench/exp_ml's ≥3x training-throughput bar compares against and
    test/test_ml_diff pins. *)

type t

type plan
(** Preallocated activations + gradient accumulator for one stripe of a
    fixed row count. *)

val create :
  Sp_util.Rng.t -> d_in:int -> hidden:int -> d_out:int -> lr:float -> t
(** Glorot-initialized, Adam with betas (0.9, 0.999), eps 1e-8. The same
    [rng] draw order as {!Reference.Mlp.create}, so equal seeds give
    equal initial weights. *)

val params : t -> Tensor.t list
(** [w1; b1; w2; b2] (live tensors, updated in place). *)

val plan : t -> rows:int -> plan

val stripe_plans : t -> rows:int -> jobs:int -> plan array
(** One plan per contiguous stripe of a [rows]-row batch; stripe [s]
    covers rows [rows*s/jobs, rows*(s+1)/jobs). *)

val train_step : t -> plan -> x:Tensor.t -> target:Tensor.t -> float
(** One Adam step of MSE over the batch ([x]: rows x d_in, [target]:
    rows x d_out, both matching the plan's rows); returns the mean
    squared error. Allocation-free in steady state. *)

val train_step_striped :
  t -> Sp_util.Pool.t -> plan array -> x:Tensor.t -> target:Tensor.t -> float
(** Like {!train_step} but each stripe's forward/backward runs as one
    pool task over zero-copy row views; gradients are reduced in stripe
    order before the (single) Adam step. Re-raises a stripe's
    exception. *)

val predict_into : t -> plan -> x:Tensor.t -> Tensor.t
(** Forward only; returns the plan's output buffer (valid until the next
    use of the plan). *)
