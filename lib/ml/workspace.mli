(** Generation-stamped buffer arena for tensor temporaries.

    The ML analogue of the executor's [Exec.scratch]: a per-model (or
    per-domain) pool of float64 bigarray buffers keyed by element count.
    Within one generation, {!acquire} hands out distinct buffers
    cursor-style (allocating only on first use); {!tick} starts a new
    generation, after which every buffer is handed out again from the
    start. A steady-state forward/backward/optimizer step therefore
    allocates ~0 minor words once the arena is warm.

    An arena is single-domain state: share nothing, give each pool
    worker its own. Buffers are only valid within the generation they
    were acquired in — values that must survive a {!tick} (parameters,
    embeddings, optimizer slots) must be allocated while no arena is
    active (see {!without}). *)

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

val create : unit -> t

val tick : t -> unit
(** Start a new generation: every retained buffer becomes reusable. One
    integer increment; slots re-stamp lazily on first {!acquire}. *)

val generation : t -> int

val acquire : t -> int -> buffer
(** A buffer of exactly [n] elements, contents unspecified (possibly a
    recycled buffer's old values — callers initialize). Valid until the
    next {!tick}. *)

val retained : t -> int
(** Total buffers held across all size classes (the arena's high-water
    footprint; steady-state training must stop growing it). *)

val retained_elements : t -> int
(** Total float64 elements held (8 bytes each). *)

(** {1 Ambient activation}

    {!Tensor}'s allocator consults the ambient arena of the current
    domain, so activating a workspace makes the whole Ad/Nn stack draw
    temporaries from it without any signature changes. *)

val ambient : unit -> t option
(** The active arena of the calling domain, if any. *)

val with_active : t -> (unit -> 'a) -> 'a
(** Run with this arena active on the calling domain (restores the
    previous one afterwards, also on exceptions; nests). Does {e not}
    tick — the caller controls generation boundaries. *)

val without : (unit -> 'a) -> 'a
(** Run with no ambient arena — escape hatch for allocating long-lived
    tensors from inside an active scope. *)

val scoped : t -> (unit -> 'a) -> 'a
(** [tick] then [with_active]: one self-contained generation whose
    results must not escape as workspace tensors (e.g. one inference
    call returning plain floats). *)
