(* Dense row-major float64 matrices on Bigarray.Array1 storage.

   Two properties are load-bearing:

   - Float semantics are frozen: every op performs the same IEEE
     operations in the same order as the original float-array core
     (kept as {!Reference}), including the [av <> 0.0] skip in matmul
     and ascending-index RNG draws in the initializers, so models,
     serialized weights and campaign results are byte-identical across
     the storage swap. test/test_ml_diff pins this.

   - Storage is off the OCaml heap and recyclable: the allocator draws
     from the domain's ambient {!Workspace} when one is active, so a
     steady-state train/inference step reuses warm buffers instead of
     churning the minor heap. Initializers ([glorot]/[randn]) always
     heap-allocate — parameters outlive any workspace generation. *)

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { rows : int; cols : int; data : buffer }

(* The hot kernels below validate shapes once at entry and then index
   with [unsafe_get]/[unsafe_set]: every index is derived from the
   validated [rows]/[cols], so the per-element bound check would only
   re-prove what the entry check established — and it is what separates
   these loops from the boxed-array core's throughput. *)
module A1 = Bigarray.Array1

let heap_buffer n = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

(* Workspace buffers carry stale contents; every caller initializes. *)
let alloc rows cols =
  let n = rows * cols in
  match Workspace.ambient () with
  | Some ws -> { rows; cols; data = Workspace.acquire ws n }
  | None -> { rows; cols; data = heap_buffer n }

let create rows cols =
  let t = alloc rows cols in
  Bigarray.Array1.fill t.data 0.0;
  t

let make rows cols v =
  let t = alloc rows cols in
  Bigarray.Array1.fill t.data v;
  t

let of_array ~rows ~cols data =
  if Array.length data <> rows * cols then
    invalid_arg "Tensor.of_array: size mismatch";
  let t = alloc rows cols in
  for i = 0 to (rows * cols) - 1 do
    t.data.{i} <- data.(i)
  done;
  t

let of_row data = of_array ~rows:1 ~cols:(Array.length data) data

let copy t =
  let r = alloc t.rows t.cols in
  Bigarray.Array1.blit t.data r.data;
  r

let copy_into ~dst src =
  if dst.rows <> src.rows || dst.cols <> src.cols then
    invalid_arg "Tensor.copy_into: shape mismatch";
  Bigarray.Array1.blit src.data dst.data

let get t i j = t.data.{(i * t.cols) + j}

let set t i j v = t.data.{(i * t.cols) + j} <- v

let dims t = (t.rows, t.cols)

let numel t = t.rows * t.cols

let fill t v = Bigarray.Array1.fill t.data v

let to_array t =
  Array.init (numel t) (fun i -> t.data.{i})

let glorot rng rows cols =
  let bound = sqrt (6.0 /. float_of_int (rows + cols)) in
  let t = { rows; cols; data = heap_buffer (rows * cols) } in
  for i = 0 to (rows * cols) - 1 do
    t.data.{i} <- Sp_util.Rng.float rng (2.0 *. bound) -. bound
  done;
  t

let randn rng std rows cols =
  let t = { rows; cols; data = heap_buffer (rows * cols) } in
  for i = 0 to (rows * cols) - 1 do
    t.data.{i} <- std *. Sp_util.Rng.gaussian rng
  done;
  t

let same_shape a b = a.rows = b.rows && a.cols = b.cols

let add_into ~dst src =
  if same_shape dst src then
    for i = 0 to numel dst - 1 do
      A1.unsafe_set dst.data i (A1.unsafe_get dst.data i +. A1.unsafe_get src.data i)
    done
  else if src.rows = 1 && src.cols = dst.cols then
    for i = 0 to dst.rows - 1 do
      let base = i * dst.cols in
      for j = 0 to dst.cols - 1 do
        A1.unsafe_set dst.data (base + j) (A1.unsafe_get dst.data (base + j) +. A1.unsafe_get src.data j)
      done
    done
  else invalid_arg "Tensor.add_into: shape mismatch"

let add a b =
  let r = copy a in
  add_into ~dst:r b;
  r

let sub a b =
  if not (same_shape a b) then invalid_arg "Tensor.sub: shape mismatch";
  let r = alloc a.rows a.cols in
  for i = 0 to numel a - 1 do
    A1.unsafe_set r.data i (A1.unsafe_get a.data i -. A1.unsafe_get b.data i)
  done;
  r

let sub_into ~dst a b =
  if not (same_shape a b && same_shape dst a) then
    invalid_arg "Tensor.sub_into: shape mismatch";
  for i = 0 to numel a - 1 do
    A1.unsafe_set dst.data i (A1.unsafe_get a.data i -. A1.unsafe_get b.data i)
  done

let mul a b =
  if not (same_shape a b) then invalid_arg "Tensor.mul: shape mismatch";
  let r = alloc a.rows a.cols in
  for i = 0 to numel a - 1 do
    A1.unsafe_set r.data i (A1.unsafe_get a.data i *. A1.unsafe_get b.data i)
  done;
  r

let mul_into ~dst a b =
  if not (same_shape a b && same_shape dst a) then
    invalid_arg "Tensor.mul_into: shape mismatch";
  for i = 0 to numel a - 1 do
    A1.unsafe_set dst.data i (A1.unsafe_get a.data i *. A1.unsafe_get b.data i)
  done

let scale s t =
  let r = alloc t.rows t.cols in
  for i = 0 to numel t - 1 do
    A1.unsafe_set r.data i (s *. A1.unsafe_get t.data i)
  done;
  r

let scale_into ~dst s src =
  if not (same_shape dst src) then
    invalid_arg "Tensor.scale_into: shape mismatch";
  for i = 0 to numel src - 1 do
    A1.unsafe_set dst.data i (s *. A1.unsafe_get src.data i)
  done

let axpy ~alpha x y =
  if not (same_shape x y) then invalid_arg "Tensor.axpy: shape mismatch";
  for i = 0 to numel x - 1 do
    A1.unsafe_set y.data i (A1.unsafe_get y.data i +. (alpha *. A1.unsafe_get x.data i))
  done

let colsum_into ~dst src =
  if dst.rows <> 1 || dst.cols <> src.cols then
    invalid_arg "Tensor.colsum_into: shape mismatch";
  for i = 0 to src.rows - 1 do
    let base = i * src.cols in
    for j = 0 to src.cols - 1 do
      A1.unsafe_set dst.data j (A1.unsafe_get dst.data j +. A1.unsafe_get src.data (base + j))
    done
  done

let map f t =
  let r = alloc t.rows t.cols in
  for i = 0 to numel t - 1 do
    A1.unsafe_set r.data i (f (A1.unsafe_get t.data i))
  done;
  r

let map_into ~dst f src =
  if not (same_shape dst src) then
    invalid_arg "Tensor.map_into: shape mismatch";
  for i = 0 to numel src - 1 do
    A1.unsafe_set dst.data i (f (A1.unsafe_get src.data i))
  done

let matmul_into ~dst a b =
  if a.cols <> b.rows || dst.rows <> a.rows || dst.cols <> b.cols then
    invalid_arg "Tensor.matmul_into: shape mismatch";
  let n = a.rows and k = a.cols and m = b.cols in
  let ad = a.data and bd = b.data and dd = dst.data in
  for i = 0 to n - 1 do
    let abase = i * k and dbase = i * m in
    for l = 0 to k - 1 do
      let av = A1.unsafe_get ad (abase + l) in
      if av <> 0.0 then begin
        let bbase = l * m in
        for j = 0 to m - 1 do
          A1.unsafe_set dd (dbase + j) (A1.unsafe_get dd (dbase + j) +. (av *. A1.unsafe_get bd (bbase + j)))
        done
      end
    done
  done

let matmul a b =
  let dst = create a.rows b.cols in
  matmul_into ~dst a b;
  dst

let matmul_tn_into ~dst a b =
  (* dst += (a^T b): a is k x n, b is k x m, dst n x m. The l-outer loop
     walks both inputs row-major (cache-friendly) and, like matmul,
     accumulates contributions in ascending-row order — the same order a
     per-sample gradient accumulation would use. *)
  if a.rows <> b.rows || dst.rows <> a.cols || dst.cols <> b.cols then
    invalid_arg "Tensor.matmul_tn_into: shape mismatch";
  let k = a.rows and n = a.cols and m = b.cols in
  let ad = a.data and bd = b.data and dd = dst.data in
  for l = 0 to k - 1 do
    let abase = l * n and bbase = l * m in
    for i = 0 to n - 1 do
      let av = A1.unsafe_get ad (abase + i) in
      if av <> 0.0 then begin
        let dbase = i * m in
        for j = 0 to m - 1 do
          A1.unsafe_set dd (dbase + j) (A1.unsafe_get dd (dbase + j) +. (av *. A1.unsafe_get bd (bbase + j)))
        done
      end
    done
  done

let matmul_tn a b =
  if a.rows <> b.rows then invalid_arg "Tensor.matmul_tn: shape mismatch";
  let dst = create a.cols b.cols in
  matmul_tn_into ~dst a b;
  dst

let matmul_nt_into ~dst a b =
  (* dst <- (a b^T): a is n x k, b is m x k, dst n x m (overwrites). *)
  if a.cols <> b.cols || dst.rows <> a.rows || dst.cols <> b.rows then
    invalid_arg "Tensor.matmul_nt_into: shape mismatch";
  let n = a.rows and k = a.cols and m = b.rows in
  let ad = a.data and bd = b.data and dd = dst.data in
  (* Hoisted accumulator: a [ref] inside the loop nest would allocate a
     boxed cell per output element. *)
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let abase = i * k in
    for j = 0 to m - 1 do
      let bbase = j * k in
      acc := 0.0;
      for l = 0 to k - 1 do
        acc := !acc +. (A1.unsafe_get ad (abase + l) *. A1.unsafe_get bd (bbase + l))
      done;
      A1.unsafe_set dd ((i * m) + j) !acc
    done
  done

let matmul_nt a b =
  if a.cols <> b.cols then invalid_arg "Tensor.matmul_nt: shape mismatch";
  let dst = alloc a.rows b.rows in
  matmul_nt_into ~dst a b;
  dst

let transpose t =
  let r = alloc t.cols t.rows in
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      r.data.{(j * t.rows) + i} <- t.data.{(i * t.cols) + j}
    done
  done;
  r

let row t i = { rows = 1; cols = t.cols; data = Bigarray.Array1.sub t.data (i * t.cols) t.cols }

let rows_view t start nrows =
  if start < 0 || nrows < 0 || start + nrows > t.rows then
    invalid_arg "Tensor.rows_view: out of range";
  { rows = nrows;
    cols = t.cols;
    data = Bigarray.Array1.sub t.data (start * t.cols) (nrows * t.cols) }

let sum t =
  let acc = ref 0.0 in
  for i = 0 to numel t - 1 do
    acc := !acc +. t.data.{i}
  done;
  !acc

let frobenius t =
  let acc = ref 0.0 in
  for i = 0 to numel t - 1 do
    acc := !acc +. (t.data.{i} *. t.data.{i})
  done;
  sqrt !acc

let equal a b =
  same_shape a b
  &&
  let rec go i = i >= numel a || (a.data.{i} = b.data.{i} && go (i + 1)) in
  go 0

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for i = 0 to min (t.rows - 1) 7 do
    Format.fprintf ppf "[";
    for j = 0 to min (t.cols - 1) 11 do
      Format.fprintf ppf "%8.4f " (get t i j)
    done;
    Format.fprintf ppf "%s]@,"
      (if t.cols > 12 then "..." else "")
  done;
  if t.rows > 8 then Format.fprintf ppf "...@,";
  Format.fprintf ppf "(%dx%d)@]" t.rows t.cols
