(* Fused backward loops run over same-shaped value/grad buffers; shapes
   are fixed at node construction, so they index unchecked. *)
module A1 = Bigarray.Array1

type t = {
  id : int;
  value : Tensor.t;
  mutable grad : Tensor.t option;
  parents : t list;
  backward_fn : t -> unit;
  requires_grad : bool;
}

(* Atomic: stripe-parallel training builds tapes on several domains at
   once, and a plain [ref] could hand two nodes of one tape the same id
   (breaking the backward DFS's visited set). *)
let next_id = Atomic.make 0

let fresh_id () = Atomic.fetch_and_add next_id 1 + 1

let no_backward _ = ()

let const value =
  { id = fresh_id (); value; grad = None; parents = []; backward_fn = no_backward;
    requires_grad = false }

let param value =
  { id = fresh_id (); value; grad = None; parents = []; backward_fn = no_backward;
    requires_grad = true }

let value t = t.value

let grad t =
  match t.grad with
  | Some g -> g
  | None -> invalid_arg "Ad.grad: no gradient accumulated"

let grad_opt t = t.grad

let zero_grad t = t.grad <- None

let accum node tensor =
  if node.requires_grad then
    match node.grad with
    | None -> node.grad <- Some (Tensor.copy tensor)
    | Some g -> Tensor.add_into ~dst:g tensor

let node value parents backward_fn =
  {
    id = fresh_id ();
    value;
    grad = None;
    parents;
    backward_fn;
    requires_grad = List.exists (fun p -> p.requires_grad) parents;
  }

let out_grad n =
  match n.grad with
  | Some g -> g
  | None ->
    (* A node participating in backward always has a gradient by the time
       its closure runs; a missing one means zero contribution. *)
    Tensor.create n.value.Tensor.rows n.value.Tensor.cols

(* ------------------------------------------------------------------ *)

let add a b =
  let v = Tensor.add a.value b.value in
  let back n =
    let g = out_grad n in
    accum a g;
    if b.value.Tensor.rows = 1 && a.value.Tensor.rows > 1 then begin
      (* Bias broadcast: column-sum the gradient. *)
      let cols = b.value.Tensor.cols in
      let gb = Tensor.create 1 cols in
      for i = 0 to g.Tensor.rows - 1 do
        for j = 0 to cols - 1 do
          Tensor.set gb 0 j (Tensor.get gb 0 j +. Tensor.get g i j)
        done
      done;
      accum b gb
    end
    else accum b g
  in
  node v [ a; b ] back

let sub a b =
  let v = Tensor.sub a.value b.value in
  let back n =
    let g = out_grad n in
    accum a g;
    accum b (Tensor.scale (-1.0) g)
  in
  node v [ a; b ] back

let mul a b =
  let v = Tensor.mul a.value b.value in
  let back n =
    let g = out_grad n in
    accum a (Tensor.mul g b.value);
    accum b (Tensor.mul g a.value)
  in
  node v [ a; b ] back

let scale s a =
  let v = Tensor.scale s a.value in
  let back n = accum a (Tensor.scale s (out_grad n)) in
  node v [ a ] back

let add_weighted a b w =
  let v = Tensor.add a.value (Tensor.scale w b.value) in
  let back n =
    let g = out_grad n in
    accum a g;
    accum b (Tensor.scale w g)
  in
  node v [ a; b ] back

let matmul a b =
  let v = Tensor.matmul a.value b.value in
  let back n =
    let g = out_grad n in
    accum a (Tensor.matmul_nt g b.value);
    accum b (Tensor.matmul_tn a.value g)
  in
  node v [ a; b ] back

let matmul_nt a b =
  let v = Tensor.matmul_nt a.value b.value in
  let back n =
    let g = out_grad n in
    accum a (Tensor.matmul g b.value);
    accum b (Tensor.matmul_tn g a.value)
  in
  node v [ a; b ] back

let elementwise f f' a =
  let v = Tensor.map f a.value in
  let back n =
    let g = out_grad n in
    (* One fused pass: g .* f'(a), without materializing f'(a). *)
    let da = Tensor.create g.Tensor.rows g.Tensor.cols in
    let gd = g.Tensor.data and ad = a.value.Tensor.data and dd = da.Tensor.data in
    for i = 0 to Tensor.numel g - 1 do
      A1.unsafe_set dd i (A1.unsafe_get gd i *. f' (A1.unsafe_get ad i))
    done;
    accum a da
  in
  node v [ a ] back

let relu = elementwise (fun x -> Float.max 0.0 x) (fun x -> if x > 0.0 then 1.0 else 0.0)

let sigmoid_f x = 1.0 /. (1.0 +. exp (-.x))

let sigmoid =
  elementwise sigmoid_f (fun x ->
      let s = sigmoid_f x in
      s *. (1.0 -. s))

let tanh =
  elementwise Float.tanh (fun x ->
      let t = Float.tanh x in
      1.0 -. (t *. t))

let softmax_rows a =
  let rows, cols = Tensor.dims a.value in
  let v = Tensor.create rows cols in
  for i = 0 to rows - 1 do
    let mx = ref neg_infinity in
    for j = 0 to cols - 1 do
      mx := Float.max !mx (Tensor.get a.value i j)
    done;
    let z = ref 0.0 in
    for j = 0 to cols - 1 do
      let e = exp (Tensor.get a.value i j -. !mx) in
      Tensor.set v i j e;
      z := !z +. e
    done;
    for j = 0 to cols - 1 do
      Tensor.set v i j (Tensor.get v i j /. !z)
    done
  done;
  let back n =
    let g = out_grad n in
    (* Fused per-row pass over the raw buffers: one traversal computes
       the grad-value dot product and a second writes the jacobian
       product — no per-element get/set calls, no f'(a) temporary. *)
    let da = Tensor.create rows cols in
    let gd = g.Tensor.data and vd = v.Tensor.data and dd = da.Tensor.data in
    let dot = ref 0.0 in
    for i = 0 to rows - 1 do
      let base = i * cols in
      dot := 0.0;
      for j = 0 to cols - 1 do
        dot := !dot +. (A1.unsafe_get gd (base + j) *. A1.unsafe_get vd (base + j))
      done;
      for j = 0 to cols - 1 do
        A1.unsafe_set dd (base + j) (A1.unsafe_get vd (base + j) *. (A1.unsafe_get gd (base + j) -. !dot))
      done
    done;
    accum a da
  in
  node v [ a ] back

let mean_all a =
  let n_elems = float_of_int (Tensor.numel a.value) in
  let v = Tensor.of_array ~rows:1 ~cols:1 [| Tensor.sum a.value /. n_elems |] in
  let back n =
    let g = Tensor.get (out_grad n) 0 0 in
    let rows, cols = Tensor.dims a.value in
    accum a (Tensor.make rows cols (g /. n_elems))
  in
  node v [ a ] back

let gather_rows a idx =
  let _, cols = Tensor.dims a.value in
  let v = Tensor.create (Array.length idx) cols in
  Array.iteri
    (fun i src ->
      for j = 0 to cols - 1 do
        Tensor.set v i j (Tensor.get a.value src j)
      done)
    idx;
  let back n =
    let g = out_grad n in
    let da = Tensor.create a.value.Tensor.rows cols in
    Array.iteri
      (fun i src ->
        for j = 0 to cols - 1 do
          Tensor.set da src j (Tensor.get da src j +. Tensor.get g i j)
        done)
      idx;
    accum a da
  in
  node v [ a ] back

let spmm ~src ~dst ~coef ~rows a =
  let n_edges = Array.length src in
  if Array.length dst <> n_edges || Array.length coef <> n_edges then
    invalid_arg "Ad.spmm: edge array length mismatch";
  let _, cols = Tensor.dims a.value in
  let v = Tensor.create rows cols in
  for e = 0 to n_edges - 1 do
    let s = src.(e) and d = dst.(e) and c = coef.(e) in
    for j = 0 to cols - 1 do
      Tensor.set v d j (Tensor.get v d j +. (c *. Tensor.get a.value s j))
    done
  done;
  let back n =
    let g = out_grad n in
    let da = Tensor.create a.value.Tensor.rows cols in
    for e = 0 to n_edges - 1 do
      let s = src.(e) and d = dst.(e) and c = coef.(e) in
      for j = 0 to cols - 1 do
        Tensor.set da s j (Tensor.get da s j +. (c *. Tensor.get g d j))
      done
    done;
    accum a da
  in
  node v [ a ] back

let bce_with_logits a ~targets ~mask =
  let rows, cols = Tensor.dims a.value in
  if cols <> 1 || Array.length targets <> rows || Array.length mask <> rows then
    invalid_arg "Ad.bce_with_logits: shape mismatch";
  let count = Array.fold_left (fun acc m -> if m <> 0.0 then acc +. m else acc) 0.0 mask in
  let denom = Float.max count 1.0 in
  let total = ref 0.0 in
  for i = 0 to rows - 1 do
    if mask.(i) <> 0.0 then begin
      let l = Tensor.get a.value i 0 and t = targets.(i) in
      (* max(l,0) - l*t + log(1 + exp(-|l|)) : numerically stable BCE. *)
      let loss = Float.max l 0.0 -. (l *. t) +. log (1.0 +. exp (-.Float.abs l)) in
      total := !total +. (mask.(i) *. loss)
    end
  done;
  let v = Tensor.of_array ~rows:1 ~cols:1 [| !total /. denom |] in
  let back n =
    let g = Tensor.get (out_grad n) 0 0 in
    let da = Tensor.create rows 1 in
    for i = 0 to rows - 1 do
      if mask.(i) <> 0.0 then begin
        let l = Tensor.get a.value i 0 in
        Tensor.set da i 0 (g *. mask.(i) *. (sigmoid_f l -. targets.(i)) /. denom)
      end
    done;
    accum a da
  in
  node v [ a ] back

let cross_entropy_rows a ~targets =
  let rows, cols = Tensor.dims a.value in
  if Array.length targets <> rows then
    invalid_arg "Ad.cross_entropy_rows: target length mismatch";
  let probs = Tensor.create rows cols in
  let total = ref 0.0 and count = ref 0 in
  for i = 0 to rows - 1 do
    let mx = ref neg_infinity in
    for j = 0 to cols - 1 do
      mx := Float.max !mx (Tensor.get a.value i j)
    done;
    let z = ref 0.0 in
    for j = 0 to cols - 1 do
      let e = exp (Tensor.get a.value i j -. !mx) in
      Tensor.set probs i j e;
      z := !z +. e
    done;
    for j = 0 to cols - 1 do
      Tensor.set probs i j (Tensor.get probs i j /. !z)
    done;
    if targets.(i) >= 0 then begin
      total := !total -. log (Float.max 1e-12 (Tensor.get probs i targets.(i)));
      incr count
    end
  done;
  let denom = float_of_int (max 1 !count) in
  let v = Tensor.of_array ~rows:1 ~cols:1 [| !total /. denom |] in
  let back n =
    let g = Tensor.get (out_grad n) 0 0 in
    let da = Tensor.create rows cols in
    for i = 0 to rows - 1 do
      if targets.(i) >= 0 then
        for j = 0 to cols - 1 do
          let p = Tensor.get probs i j in
          let delta = if j = targets.(i) then 1.0 else 0.0 in
          Tensor.set da i j (g *. (p -. delta) /. denom)
        done
    done;
    accum a da
  in
  node v [ a ] back

(* ------------------------------------------------------------------ *)

let backward root =
  (* Reverse topological order via iterative DFS. *)
  let visited = Hashtbl.create 256 in
  let order = ref [] in
  let rec visit n =
    if n.requires_grad && not (Hashtbl.mem visited n.id) then begin
      Hashtbl.add visited n.id ();
      List.iter visit n.parents;
      order := n :: !order
    end
  in
  visit root;
  let rows, cols = Tensor.dims root.value in
  root.grad <- Some (Tensor.make rows cols 1.0);
  List.iter (fun n -> n.backward_fn n) !order
