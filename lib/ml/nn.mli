(** Neural-network building blocks on top of {!Ad}. *)

module Linear : sig
  type t

  val create : ?bias:bool -> Sp_util.Rng.t -> int -> int -> t
  (** [create rng d_in d_out], Glorot-initialized. *)

  val apply : t -> Ad.t -> Ad.t

  val params : t -> Ad.t list

  val weight : t -> Tensor.t
  (** The raw weight matrix (shared with the trainable parameter). *)

  val bias : t -> Tensor.t option

  val clone_shared : t -> t
  (** Fresh parameter leaves over the {e same} value tensors: the clone
      accumulates its own gradients but reads (and sees updates to) the
      original's weights — the per-worker model of stripe-parallel
      training. *)
end

module Embedding : sig
  type t

  val create : Sp_util.Rng.t -> vocab:int -> dim:int -> t

  val lookup : t -> int array -> Ad.t
  (** One row per index. *)

  val params : t -> Ad.t list

  val dim : t -> int

  val table : t -> Tensor.t
  (** The raw embedding table (shared with the trainable parameter). *)

  val clone_shared : t -> t
  (** See {!Linear.clone_shared}. *)
end

val zero_grads : Ad.t list -> unit

val num_parameters : Ad.t list -> int
