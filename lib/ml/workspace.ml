(* Generation-stamped buffer arena for tensor temporaries, modeled on
   the executor's Exec.scratch: buffers are keyed by element count,
   handed out cursor-style within a generation, and recycled wholesale
   when the generation ticks. Slots are stamped lazily (like
   Sp_util.Stampset), so a tick is one integer increment no matter how
   many shapes the arena holds.

   Activation is ambient: [with_active] installs the arena in
   domain-local storage and {!Tensor}'s allocator draws from it, so the
   whole Ad/Nn stack becomes allocation-free in steady state without
   threading a workspace argument through every operation. Buffers are
   only valid within the generation they were acquired in — anything
   that must outlive the scope (parameters, embeddings, optimizer
   state) is allocated while no arena is active. *)

type buffer = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type slot = {
  mutable bufs : buffer array;  (* capacity-doubled; [len] entries live *)
  mutable len : int;
  mutable cursor : int;  (* next buffer to hand out this generation *)
  mutable stamp : int;  (* generation the cursor belongs to *)
}

type t = { slots : (int, slot) Hashtbl.t; mutable generation : int }

let create () = { slots = Hashtbl.create 64; generation = 0 }

let tick t = t.generation <- t.generation + 1

let generation t = t.generation

let new_buffer n = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let acquire t n =
  (* [Hashtbl.find] + exception instead of [find_opt]: the hit path must
     not allocate an option. *)
  let slot =
    match Hashtbl.find t.slots n with
    | slot -> slot
    | exception Not_found ->
      let slot = { bufs = [||]; len = 0; cursor = 0; stamp = t.generation } in
      Hashtbl.add t.slots n slot;
      slot
  in
  if slot.stamp <> t.generation then begin
    slot.stamp <- t.generation;
    slot.cursor <- 0
  end;
  if slot.cursor < slot.len then begin
    let b = slot.bufs.(slot.cursor) in
    slot.cursor <- slot.cursor + 1;
    b
  end
  else begin
    let b = new_buffer n in
    if slot.len = Array.length slot.bufs then begin
      let grown = Array.make (max 4 (2 * Array.length slot.bufs)) b in
      Array.blit slot.bufs 0 grown 0 slot.len;
      slot.bufs <- grown
    end;
    slot.bufs.(slot.len) <- b;
    slot.len <- slot.len + 1;
    slot.cursor <- slot.len;
    b
  end

let retained t = Hashtbl.fold (fun _ slot acc -> acc + slot.len) t.slots 0

let retained_elements t =
  Hashtbl.fold (fun n slot acc -> acc + (n * slot.len)) t.slots 0

(* ------------------------------------------------------------------ *)
(* Ambient activation                                                   *)
(* ------------------------------------------------------------------ *)

let ambient_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let ambient () = Domain.DLS.get ambient_key

let with_active t f =
  let prev = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key (Some t);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key prev) f

let without f =
  let prev = Domain.DLS.get ambient_key in
  Domain.DLS.set ambient_key None;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key prev) f

let scoped t f =
  tick t;
  with_active t f
