(** Reverse-mode automatic differentiation over {!Tensor.t}.

    A lightweight tape: every operation builds a node holding its value and
    a backward closure; {!backward} runs the closures in reverse topological
    order, accumulating gradients into the parameter leaves. This is the
    engine under both the block-content encoder and the relational GNN. *)

type t

(** {1 Leaves} *)

val const : Tensor.t -> t
(** A leaf that does not require gradients. *)

val param : Tensor.t -> t
(** A trainable leaf; its gradient is available after {!backward}. The
    tensor is shared, so an optimizer updating it in place is visible to
    subsequent forward passes. *)

val value : t -> Tensor.t

val grad : t -> Tensor.t
(** Raises [Invalid_argument] if no gradient was accumulated. *)

val grad_opt : t -> Tensor.t option

val zero_grad : t -> unit

val accum : t -> Tensor.t -> unit
(** Add a tensor into the node's gradient slot (copying on first use).
    No-op on nodes that do not require gradients. Used by the striped
    trainer to reduce per-stripe gradients into the primary parameters;
    {!backward} uses the same accumulation internally. *)

(** {1 Operations} *)

val add : t -> t -> t
(** Same shape, or second argument a broadcast [1 x cols] row (bias). *)

val sub : t -> t -> t

val mul : t -> t -> t

val scale : float -> t -> t

val matmul : t -> t -> t

val matmul_nt : t -> t -> t
(** [a * transpose b] (attention scores). *)

val relu : t -> t

val sigmoid : t -> t

val tanh : t -> t

val softmax_rows : t -> t

val mean_all : t -> t
(** [1 x 1] mean of all entries. *)

val add_weighted : t -> t -> float -> t
(** [add_weighted a b w] is [a + w*b] (residual connections, loss sums). *)

val gather_rows : t -> int array -> t
(** Embedding lookup: row [i] of the result is row [idx.(i)] of the input;
    gradients scatter-add back. *)

val spmm : src:int array -> dst:int array -> coef:float array -> rows:int -> t -> t
(** Sparse message passing: [out.(dst.(e)) += coef.(e) * x.(src.(e))] for
    every edge [e]; [rows] is the output row count. The workhorse of GNN
    propagation. *)

(** {1 Losses} *)

val bce_with_logits : t -> targets:float array -> mask:float array -> t
(** Mean binary cross-entropy over entries with non-zero mask, computed
    stably from logits. The input must be [n x 1]; [targets]/[mask] have
    length [n]. *)

val cross_entropy_rows : t -> targets:int array -> t
(** Mean softmax cross-entropy per row against integer class targets;
    a target of [-1] skips the row (padding). *)

(** {1 Backward} *)

val backward : t -> unit
(** Seeds the node's gradient with ones and propagates to every leaf. *)
