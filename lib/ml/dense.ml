(* Batched, workspace-free MLP fast path: every activation, gradient and
   optimizer slot is preallocated once (in [create]/[plan]), and a
   steady-state train step runs entirely through in-place Bigarray
   kernels — ~0 minor words per step. This is the striped execution
   model of DESIGN.md §13 in its purest form: one matrix op per batch
   instead of per-sample loops, and optional sharding of a batch's rows
   into contiguous stripes evaluated on Sp_util.Pool domains with a
   deterministic stripe-order gradient reduction.

   The math (MSE over a 2-layer ReLU MLP, Adam) deliberately matches
   Reference.Mlp operation for operation: the batched matmul kernels
   accumulate in the same ascending-row order as the per-sample loops,
   so test_ml_diff can pin the two end to end. *)

module Pool = Sp_util.Pool

(* Buffers here are sized once in [create]/[plan] and [grad_stripe]
   checks row counts at entry, so the fused loops index unchecked. *)
module A1 = Bigarray.Array1

type grads = { gw1 : Tensor.t; gb1 : Tensor.t; gw2 : Tensor.t; gb2 : Tensor.t }

type t = {
  w1 : Tensor.t;
  b1 : Tensor.t;
  w2 : Tensor.t;
  b2 : Tensor.t;
  g : grads;  (* reduction target of the striped path *)
  m : float array array;
  v : float array array;
  beta1 : float;
  beta2 : float;
  eps : float;
  lr : float;
  mutable step_count : int;
}

type plan = {
  rows : int;
  z1 : Tensor.t;  (* rows x hidden, pre-activation *)
  h1 : Tensor.t;  (* rows x hidden *)
  y : Tensor.t;  (* rows x d_out *)
  dy : Tensor.t;
  dz1 : Tensor.t;  (* rows x hidden *)
  pg : grads;  (* this stripe's gradient accumulator *)
}

let alloc_grads ~d_in ~hidden ~d_out =
  {
    gw1 = Tensor.create d_in hidden;
    gb1 = Tensor.create 1 hidden;
    gw2 = Tensor.create hidden d_out;
    gb2 = Tensor.create 1 d_out;
  }

let create rng ~d_in ~hidden ~d_out ~lr =
  let w1 = Tensor.glorot rng d_in hidden in
  let b1 = Tensor.create 1 hidden in
  let w2 = Tensor.glorot rng hidden d_out in
  let b2 = Tensor.create 1 d_out in
  {
    w1; b1; w2; b2;
    g = alloc_grads ~d_in ~hidden ~d_out;
    m = Array.map (fun (p : Tensor.t) -> Array.make (Tensor.numel p) 0.0)
          [| w1; b1; w2; b2 |];
    v = Array.map (fun (p : Tensor.t) -> Array.make (Tensor.numel p) 0.0)
          [| w1; b1; w2; b2 |];
    beta1 = 0.9; beta2 = 0.999; eps = 1e-8; lr;
    step_count = 0;
  }

let params t = [ t.w1; t.b1; t.w2; t.b2 ]

let plan t ~rows =
  let hidden = t.w1.Tensor.cols and d_out = t.w2.Tensor.cols in
  {
    rows;
    z1 = Tensor.create rows hidden;
    h1 = Tensor.create rows hidden;
    y = Tensor.create rows d_out;
    dy = Tensor.create rows d_out;
    dz1 = Tensor.create rows hidden;
    pg = alloc_grads ~d_in:t.w1.Tensor.rows ~hidden ~d_out;
  }

(* Contiguous row stripes, sizes within one of each other; stripe [s]
   covers rows [rows*s/jobs, rows*(s+1)/jobs). *)
let stripe_plans t ~rows ~jobs =
  Array.init jobs (fun s ->
      plan t ~rows:((rows * (s + 1) / jobs) - (rows * s / jobs)))

let zero_grads g =
  Tensor.fill g.gw1 0.0;
  Tensor.fill g.gb1 0.0;
  Tensor.fill g.gw2 0.0;
  Tensor.fill g.gb2 0.0

let relu_into ~dst (src : Tensor.t) =
  (* Inlined (not map_into): a polymorphic [float -> float] call would
     box every element. *)
  let s = src.Tensor.data and d = dst.Tensor.data in
  for i = 0 to Tensor.numel src - 1 do
    A1.unsafe_set d i (Float.max 0.0 (A1.unsafe_get s i))
  done

(* Forward + backward for one stripe: overwrites [p]'s activations and
   gradient accumulator, returns the stripe's summed squared error.
   [denom] is the whole batch's n * d_out (stripes of one batch share the
   global loss normalization). *)
let grad_stripe t p ~x ~target ~denom =
  if x.Tensor.rows <> p.rows || target.Tensor.rows <> p.rows then
    invalid_arg "Dense.grad_stripe: row mismatch";
  let d_out = t.w2.Tensor.cols in
  (* forward *)
  Tensor.fill p.z1 0.0;
  Tensor.matmul_into ~dst:p.z1 x t.w1;
  Tensor.add_into ~dst:p.z1 t.b1;
  relu_into ~dst:p.h1 p.z1;
  Tensor.fill p.y 0.0;
  Tensor.matmul_into ~dst:p.y p.h1 t.w2;
  Tensor.add_into ~dst:p.y t.b2;
  (* loss + dy in one fused pass: dy = (2/denom) * (y - target) *)
  let sse = ref 0.0 in
  let scale = 2.0 /. denom in
  let yd = p.y.Tensor.data
  and td = target.Tensor.data
  and dyd = p.dy.Tensor.data in
  for i = 0 to (p.rows * d_out) - 1 do
    let diff = A1.unsafe_get yd i -. A1.unsafe_get td i in
    sse := !sse +. (diff *. diff);
    A1.unsafe_set dyd i (scale *. diff)
  done;
  (* backward *)
  zero_grads p.pg;
  Tensor.matmul_tn_into ~dst:p.pg.gw2 p.h1 p.dy;
  Tensor.colsum_into ~dst:p.pg.gb2 p.dy;
  (* dz1 = (dy W2^T) .* relu'(z1), fused over the dh1 buffer *)
  Tensor.matmul_nt_into ~dst:p.dz1 p.dy t.w2;
  let z1d = p.z1.Tensor.data and dz1d = p.dz1.Tensor.data in
  for i = 0 to Tensor.numel p.dz1 - 1 do
    A1.unsafe_set dz1d i (A1.unsafe_get dz1d i *. (if A1.unsafe_get z1d i > 0.0 then 1.0 else 0.0))
  done;
  Tensor.matmul_tn_into ~dst:p.pg.gw1 x p.dz1;
  Tensor.colsum_into ~dst:p.pg.gb1 p.dz1;
  !sse

let adam_one t pi (p : Tensor.t) (g : Tensor.t) ~bc1 ~bc2 =
  let m = t.m.(pi) and v = t.v.(pi) in
  let pd = p.Tensor.data and gd = g.Tensor.data in
  for i = 0 to Tensor.numel p - 1 do
    let gi = A1.unsafe_get gd i in
    m.(i) <- (t.beta1 *. m.(i)) +. ((1.0 -. t.beta1) *. gi);
    v.(i) <- (t.beta2 *. v.(i)) +. ((1.0 -. t.beta2) *. gi *. gi);
    let mhat = m.(i) /. bc1 and vhat = v.(i) /. bc2 in
    A1.unsafe_set pd i (A1.unsafe_get pd i -. (t.lr *. mhat /. (sqrt vhat +. t.eps)))
  done

let adam t g =
  t.step_count <- t.step_count + 1;
  let bc1 = 1.0 -. (t.beta1 ** float_of_int t.step_count) in
  let bc2 = 1.0 -. (t.beta2 ** float_of_int t.step_count) in
  adam_one t 0 t.w1 g.gw1 ~bc1 ~bc2;
  adam_one t 1 t.b1 g.gb1 ~bc1 ~bc2;
  adam_one t 2 t.w2 g.gw2 ~bc1 ~bc2;
  adam_one t 3 t.b2 g.gb2 ~bc1 ~bc2

let train_step t p ~x ~target =
  let denom = float_of_int (p.rows * t.w2.Tensor.cols) in
  let sse = grad_stripe t p ~x ~target ~denom in
  adam t p.pg;
  sse /. denom

let reduce_into dst src =
  Tensor.add_into ~dst:dst.gw1 src.gw1;
  Tensor.add_into ~dst:dst.gb1 src.gb1;
  Tensor.add_into ~dst:dst.gw2 src.gw2;
  Tensor.add_into ~dst:dst.gb2 src.gb2

let train_step_striped t pool plans ~x ~target =
  let jobs = Array.length plans in
  let n = x.Tensor.rows in
  let denom = float_of_int (n * t.w2.Tensor.cols) in
  let tasks =
    List.init jobs (fun s ->
        let start = n * s / jobs in
        let len = (n * (s + 1) / jobs) - start in
        fun () ->
          grad_stripe t plans.(s)
            ~x:(Tensor.rows_view x start len)
            ~target:(Tensor.rows_view target start len)
            ~denom)
  in
  let results = Pool.run_all pool tasks in
  (* Deterministic reduction: stripe order == submission order. *)
  zero_grads t.g;
  let sse =
    List.fold_left2
      (fun acc r (p : plan) ->
        match r with
        | Ok s ->
          reduce_into t.g p.pg;
          acc +. s
        | Error e -> raise e)
      0.0 results (Array.to_list plans)
  in
  adam t t.g;
  sse /. denom

let predict_into t p ~x =
  Tensor.fill p.z1 0.0;
  Tensor.matmul_into ~dst:p.z1 x t.w1;
  Tensor.add_into ~dst:p.z1 t.b1;
  relu_into ~dst:p.h1 p.z1;
  Tensor.fill p.y 0.0;
  Tensor.matmul_into ~dst:p.y p.h1 t.w2;
  Tensor.add_into ~dst:p.y t.b2;
  p.y
