module Linear = struct
  type t = { w : Ad.t; b : Ad.t option }

  let create ?(bias = true) rng d_in d_out =
    {
      w = Ad.param (Tensor.glorot rng d_in d_out);
      b = (if bias then Some (Ad.param (Tensor.create 1 d_out)) else None);
    }

  let apply t x =
    let y = Ad.matmul x t.w in
    match t.b with Some b -> Ad.add y b | None -> y

  let params t = t.w :: (match t.b with Some b -> [ b ] | None -> [])

  let weight t = Ad.value t.w

  let bias t = Option.map Ad.value t.b

  (* Fresh parameter leaves over the SAME value tensors: a stripe worker
     clone accumulates private gradients while reading (and seeing
     updates to) the primary's weights. *)
  let clone_shared t =
    { w = Ad.param (Ad.value t.w); b = Option.map (fun b -> Ad.param (Ad.value b)) t.b }
end

module Embedding = struct
  type t = { table : Ad.t; dim : int }

  let create rng ~vocab ~dim = { table = Ad.param (Tensor.randn rng 0.1 vocab dim); dim }

  let lookup t idx = Ad.gather_rows t.table idx

  let params t = [ t.table ]

  let dim t = t.dim

  let table t = Ad.value t.table

  let clone_shared t = { table = Ad.param (Ad.value t.table); dim = t.dim }
end

let zero_grads params = List.iter Ad.zero_grad params

let num_parameters params =
  List.fold_left (fun acc p -> acc + Tensor.numel (Ad.value p)) 0 params
