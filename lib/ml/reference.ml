(* The pre-Bigarray tensor core, kept verbatim as a differential oracle
   (mirroring Sp_kernel.Reference): boxed records over [float array],
   every operation allocating its result. test/test_ml_diff pins the
   Bigarray core against this implementation, and bench/exp_ml uses the
   [Mlp] trainer below as the pre-optimization baseline. *)

type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let make rows cols v = { rows; cols; data = Array.make (rows * cols) v }

let of_array ~rows ~cols data =
  if Array.length data <> rows * cols then
    invalid_arg "Reference.of_array: size mismatch";
  { rows; cols; data }

let copy t = { t with data = Array.copy t.data }

let get t i j = t.data.((i * t.cols) + j)

let set t i j v = t.data.((i * t.cols) + j) <- v

let dims t = (t.rows, t.cols)

let numel t = t.rows * t.cols

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let glorot rng rows cols =
  let bound = sqrt (6.0 /. float_of_int (rows + cols)) in
  {
    rows;
    cols;
    data =
      Array.init (rows * cols) (fun _ ->
          Sp_util.Rng.float rng (2.0 *. bound) -. bound);
  }

let randn rng std rows cols =
  { rows; cols;
    data = Array.init (rows * cols) (fun _ -> std *. Sp_util.Rng.gaussian rng) }

let same_shape a b = a.rows = b.rows && a.cols = b.cols

let add_into ~dst src =
  if same_shape dst src then
    for i = 0 to numel dst - 1 do
      dst.data.(i) <- dst.data.(i) +. src.data.(i)
    done
  else if src.rows = 1 && src.cols = dst.cols then
    for i = 0 to dst.rows - 1 do
      let base = i * dst.cols in
      for j = 0 to dst.cols - 1 do
        dst.data.(base + j) <- dst.data.(base + j) +. src.data.(j)
      done
    done
  else invalid_arg "Reference.add_into: shape mismatch"

let add a b =
  let r = copy a in
  add_into ~dst:r b;
  r

let sub a b =
  if not (same_shape a b) then invalid_arg "Reference.sub: shape mismatch";
  { a with data = Array.init (numel a) (fun i -> a.data.(i) -. b.data.(i)) }

let mul a b =
  if not (same_shape a b) then invalid_arg "Reference.mul: shape mismatch";
  { a with data = Array.init (numel a) (fun i -> a.data.(i) *. b.data.(i)) }

let scale s t = { t with data = Array.map (fun x -> s *. x) t.data }

let map f t = { t with data = Array.map f t.data }

let matmul_into ~dst a b =
  if a.cols <> b.rows || dst.rows <> a.rows || dst.cols <> b.cols then
    invalid_arg "Reference.matmul_into: shape mismatch";
  let n = a.rows and k = a.cols and m = b.cols in
  for i = 0 to n - 1 do
    let abase = i * k and dbase = i * m in
    for l = 0 to k - 1 do
      let av = a.data.(abase + l) in
      if av <> 0.0 then begin
        let bbase = l * m in
        for j = 0 to m - 1 do
          dst.data.(dbase + j) <- dst.data.(dbase + j) +. (av *. b.data.(bbase + j))
        done
      end
    done
  done

let matmul a b =
  let dst = create a.rows b.cols in
  matmul_into ~dst a b;
  dst

let matmul_tn a b =
  (* (a^T b): a is k x n, b is k x m, result n x m. *)
  if a.rows <> b.rows then invalid_arg "Reference.matmul_tn: shape mismatch";
  let k = a.rows and n = a.cols and m = b.cols in
  let dst = create n m in
  for l = 0 to k - 1 do
    let abase = l * n and bbase = l * m in
    for i = 0 to n - 1 do
      let av = a.data.(abase + i) in
      if av <> 0.0 then begin
        let dbase = i * m in
        for j = 0 to m - 1 do
          dst.data.(dbase + j) <- dst.data.(dbase + j) +. (av *. b.data.(bbase + j))
        done
      end
    done
  done;
  dst

let matmul_nt a b =
  (* (a b^T): a is n x k, b is m x k, result n x m. *)
  if a.cols <> b.cols then invalid_arg "Reference.matmul_nt: shape mismatch";
  let n = a.rows and k = a.cols and m = b.rows in
  let dst = create n m in
  for i = 0 to n - 1 do
    let abase = i * k in
    for j = 0 to m - 1 do
      let bbase = j * k in
      let acc = ref 0.0 in
      for l = 0 to k - 1 do
        acc := !acc +. (a.data.(abase + l) *. b.data.(bbase + l))
      done;
      dst.data.((i * m) + j) <- !acc
    done
  done;
  dst

let transpose t =
  let r = create t.cols t.rows in
  for i = 0 to t.rows - 1 do
    for j = 0 to t.cols - 1 do
      r.data.((j * t.rows) + i) <- t.data.((i * t.cols) + j)
    done
  done;
  r

let row t i = Array.sub t.data (i * t.cols) t.cols

let sum t = Array.fold_left ( +. ) 0.0 t.data

let frobenius t = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 t.data)

let equal a b = same_shape a b && a.data = b.data

type tensor = t

(* ------------------------------------------------------------------ *)
(* Per-sample MLP trainer on the boxed core — the pre-PR execution
   model: one sample at a time, every op allocating, gradients
   accumulated with copy-then-add (exactly how the Ad tape did it). *)
(* ------------------------------------------------------------------ *)

module Mlp = struct
  let zeros = create

  type nonrec t = {
    w1 : t;
    b1 : t;
    w2 : t;
    b2 : t;
    (* Adam slots, one per parameter, flattened row-major. *)
    m : float array array;
    v : float array array;
    beta1 : float;
    beta2 : float;
    eps : float;
    lr : float;
    mutable step_count : int;
  }

  let create rng ~d_in ~hidden ~d_out ~lr =
    let w1 = glorot rng d_in hidden in
    let b1 = create 1 hidden in
    let w2 = glorot rng hidden d_out in
    let b2 = create 1 d_out in
    {
      w1; b1; w2; b2;
      m = Array.map (fun p -> Array.make (numel p) 0.0) [| w1; b1; w2; b2 |];
      v = Array.map (fun p -> Array.make (numel p) 0.0) [| w1; b1; w2; b2 |];
      beta1 = 0.9; beta2 = 0.999; eps = 1e-8; lr;
      step_count = 0;
    }

  let params t = [ t.w1; t.b1; t.w2; t.b2 ]

  let relu x = Float.max 0.0 x

  let relu' x = if x > 0.0 then 1.0 else 0.0

  let adam t grads =
    t.step_count <- t.step_count + 1;
    let bc1 = 1.0 -. (t.beta1 ** float_of_int t.step_count) in
    let bc2 = 1.0 -. (t.beta2 ** float_of_int t.step_count) in
    List.iteri
      (fun pi (p, g) ->
        let m = t.m.(pi) and v = t.v.(pi) in
        for i = 0 to Array.length p.data - 1 do
          let gi = g.data.(i) in
          m.(i) <- (t.beta1 *. m.(i)) +. ((1.0 -. t.beta1) *. gi);
          v.(i) <- (t.beta2 *. v.(i)) +. ((1.0 -. t.beta2) *. gi *. gi);
          let mhat = m.(i) /. bc1 and vhat = v.(i) /. bc2 in
          p.data.(i) <- p.data.(i) -. (t.lr *. mhat /. (sqrt vhat +. t.eps))
        done)
      (List.combine (params t) grads)

  (* One MSE gradient step over a batch, sample by sample. [x] is
     n x d_in, [target] n x d_out; returns the mean squared error. *)
  let train_step t ~x ~target =
    let n = x.rows and d_out = t.w2.cols in
    let denom = float_of_int (n * d_out) in
    let gw1 = zeros t.w1.rows t.w1.cols and gb1 = zeros 1 t.b1.cols in
    let gw2 = zeros t.w2.rows t.w2.cols and gb2 = zeros 1 t.b2.cols in
    let sse = ref 0.0 in
    for s = 0 to n - 1 do
      let xi = of_array ~rows:1 ~cols:x.cols (row x s) in
      let ti = of_array ~rows:1 ~cols:target.cols (row target s) in
      let z1 = add (matmul xi t.w1) t.b1 in
      let h1 = map relu z1 in
      let y = add (matmul h1 t.w2) t.b2 in
      let diff = sub y ti in
      for j = 0 to d_out - 1 do
        sse := !sse +. (diff.data.(j) *. diff.data.(j))
      done;
      let dy = scale (2.0 /. denom) diff in
      add_into ~dst:gw2 (matmul_tn h1 dy);
      add_into ~dst:gb2 dy;
      let dh1 = matmul_nt dy t.w2 in
      let dz1 = mul dh1 (map relu' z1) in
      add_into ~dst:gw1 (matmul_tn xi dz1);
      add_into ~dst:gb1 dz1
    done;
    adam t [ gw1; gb1; gw2; gb2 ];
    !sse /. denom

  let predict t ~x =
    let z1 = add (matmul x t.w1) t.b1 in
    add (matmul (map relu z1) t.w2) t.b2
end
