(** The pre-Bigarray float-array tensor core, kept as a differential
    oracle (like {!Sp_kernel.Reference} for the executor). Semantics are
    frozen: every operation performs the exact float operations, in the
    exact order, of the original implementation, so the Bigarray
    {!Tensor} can be pinned against it element for element. *)

type t = private { rows : int; cols : int; data : float array }

val create : int -> int -> t

val make : int -> int -> float -> t

val of_array : rows:int -> cols:int -> float array -> t

val copy : t -> t

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val dims : t -> int * int

val numel : t -> int

val fill : t -> float -> unit

val glorot : Sp_util.Rng.t -> int -> int -> t

val randn : Sp_util.Rng.t -> float -> int -> int -> t

val add : t -> t -> t

val add_into : dst:t -> t -> unit

val sub : t -> t -> t

val mul : t -> t -> t

val scale : float -> t -> t

val map : (float -> float) -> t -> t

val matmul : t -> t -> t

val matmul_into : dst:t -> t -> t -> unit

val matmul_tn : t -> t -> t

val matmul_nt : t -> t -> t

val transpose : t -> t

val row : t -> int -> float array

val sum : t -> float

val frobenius : t -> float

val equal : t -> t -> bool

type tensor = t
(** Alias so {!Mlp}'s signature can name the tensor type. *)

(** A per-sample MLP trainer in the pre-PR execution model: one sample
    at a time, one fresh allocation per op, gradients accumulated by
    copy-then-add. The baseline side of bench/exp_ml's throughput bar
    and of test_ml_diff's end-to-end training agreement. *)
module Mlp : sig
  type nonrec t

  val create :
    Sp_util.Rng.t -> d_in:int -> hidden:int -> d_out:int -> lr:float -> t

  val params : t -> tensor list
  (** [w1; b1; w2; b2]. *)

  val train_step : t -> x:tensor -> target:tensor -> float
  (** One Adam step of MSE over the batch (sample-by-sample); returns the
      mean squared error. *)

  val predict : t -> x:tensor -> tensor
end
