(* A reusable stamped seen-set replaces the fresh-Hashtbl-per-call dedup
   the dataset-extraction path used to pay: open addressing over parallel
   int key arrays, with membership keyed to a generation stamp so reuse
   across calls is an O(1) reset, not a table allocation. *)

type seen = {
  mutable ka : int array;  (* key halves; a slot is live iff its stamp *)
  mutable kb : int array;  (* matches the current generation *)
  mutable stamps : int array;
  mutable stamp : int;
  mutable used : int;
}

(* [kb] sentinel for single-int keys. Blocks are ids >= 0, so no pair key
   (b1, b2) can collide with an int key (b, int_key_tag); and one [seen]
   generation only ever holds keys of one kind anyway. *)
let int_key_tag = min_int

let create_seen () =
  let cap = 64 in
  {
    ka = Array.make cap 0;
    kb = Array.make cap 0;
    stamps = Array.make cap 0;
    stamp = 1;
    used = 0;
  }

let reset_seen s =
  s.stamp <- s.stamp + 1;
  s.used <- 0

let hash_pair a b =
  ((a * 0x2545f4914f6cdd1d) lxor ((b + 1) * 0x9e3779b9)) land max_int

let rec add_pair s a b =
  let cap = Array.length s.ka in
  if 2 * (s.used + 1) > cap then grow s;
  let mask = Array.length s.ka - 1 in
  let rec probe i =
    if s.stamps.(i) <> s.stamp then begin
      s.stamps.(i) <- s.stamp;
      s.ka.(i) <- a;
      s.kb.(i) <- b;
      s.used <- s.used + 1;
      true
    end
    else if s.ka.(i) = a && s.kb.(i) = b then false
    else probe ((i + 1) land mask)
  in
  probe (hash_pair a b land mask)

(* Double, re-inserting only the live (current-stamp) entries. *)
and grow s =
  let old_ka = s.ka and old_kb = s.kb and old_stamps = s.stamps in
  let old_stamp = s.stamp in
  let cap = 2 * Array.length old_ka in
  s.ka <- Array.make cap 0;
  s.kb <- Array.make cap 0;
  s.stamps <- Array.make cap 0;
  s.stamp <- 1;
  s.used <- 0;
  Array.iteri
    (fun i st ->
      if st = old_stamp then ignore (add_pair s old_ka.(i) old_kb.(i)))
    old_stamps

let add_int s a = add_pair s a int_key_tag

let edge_pairs ?seen trace =
  let s =
    match seen with
    | Some s ->
      reset_seen s;
      s
    | None -> create_seen ()
  in
  let rec go acc = function
    | [] | [ _ ] -> List.rev acc
    | b1 :: (b2 :: _ as rest) ->
      if add_pair s b1 b2 then go ((b1, b2) :: acc) rest else go acc rest
  in
  go [] trace

let block_set ~num_blocks trace =
  let set = Sp_util.Bitset.create num_blocks in
  List.iter (fun b -> if b >= 0 && b < num_blocks then Sp_util.Bitset.add set b) trace;
  set

let unique_blocks ?seen trace =
  let s =
    match seen with
    | Some s ->
      reset_seen s;
      s
    | None -> create_seen ()
  in
  List.filter (fun b -> add_int s b) trace
