(** Campaign-level coverage accumulation.

    Tracks the union of block and edge coverage over every test a fuzzing
    campaign has executed, and reports per-test novelty — the signal the
    fuzz loop uses to decide whether a mutant earned a place in the corpus
    (Figure 1, [update_corpus]) and the series plotted in Figure 6. *)

type t

val create : num_blocks:int -> num_edges:int -> t

val copy : t -> t

type delta = { new_blocks : int; new_edges : int }

val add : t -> blocks:Sp_util.Bitset.t -> edges:Sp_util.Bitset.t -> delta
(** Merge one execution's coverage; returns how much of it was new. *)

val add_stamped :
  t -> blocks:Sp_util.Stampset.t -> edges:Sp_util.Stampset.t -> delta
(** [add], but directly from an execution scratch's stamped coverage sets:
    O(sets' cardinal) rather than O(universe), with no intermediate bitset.
    The sets are only read. *)

val would_add : t -> blocks:Sp_util.Bitset.t -> edges:Sp_util.Bitset.t -> delta
(** Novelty of an execution without merging it. *)

val blocks : t -> Sp_util.Bitset.t
(** The {e live} accumulated block set, shared for the duration of one
    campaign-loop call — read-only by contract. Mutating it desynchronizes
    the cached cardinals and corrupts campaign coverage accounting. Any
    value that escapes the loop (reports, logs) must use
    [snapshot_blocks] instead. *)

val snapshot_blocks : t -> Sp_util.Bitset.t
(** An independent copy of the accumulated block set, safe to hold or
    mutate after the accumulator moves on. *)

val mem_block : t -> int -> bool
(** Read-only membership test on the accumulated block set. *)

val capacities : t -> int * int
(** [(block capacity, edge capacity)] of the underlying bitsets — used to
    validate a deserialized accumulator against the kernel it is resumed
    on. *)

val blocks_covered : t -> int

val edges_covered : t -> int

(** {1 Serialization}

    Campaign snapshots persist the accumulator as sorted element lists
    (deterministic output for a given coverage state). *)

val bitset_to_json : Sp_util.Bitset.t -> Sp_obs.Json.t
(** Shared bitset codec ([capacity] + ascending [elements]); also used for
    corpus entry coverage in snapshots. *)

val bitset_of_json : Sp_obs.Json.t -> Sp_util.Bitset.t
(** Raises [Sp_obs.Json.Decode.Error] on malformed input. *)

val to_json : t -> Sp_obs.Json.t

val of_json : Sp_obs.Json.t -> t
(** Rebuilds the accumulator (cardinal counters recomputed). Raises
    [Sp_obs.Json.Decode.Error] on malformed input. *)
