module Bitset = Sp_util.Bitset

type t = {
  block_cover : Bitset.t;
  edge_cover : Bitset.t;
  mutable nblocks : int;
  mutable nedges : int;
}

let create ~num_blocks ~num_edges =
  {
    block_cover = Bitset.create num_blocks;
    edge_cover = Bitset.create num_edges;
    nblocks = 0;
    nedges = 0;
  }

let copy t =
  {
    block_cover = Bitset.copy t.block_cover;
    edge_cover = Bitset.copy t.edge_cover;
    nblocks = t.nblocks;
    nedges = t.nedges;
  }

type delta = { new_blocks : int; new_edges : int }

let add t ~blocks ~edges =
  let new_blocks = Bitset.union_into ~dst:t.block_cover blocks in
  let new_edges = Bitset.union_into ~dst:t.edge_cover edges in
  t.nblocks <- t.nblocks + new_blocks;
  t.nedges <- t.nedges + new_edges;
  { new_blocks; new_edges }

(* The scratch-execution variant: O(members) per execution instead of
   O(universe/8) words, and no bitset materialization on the hot path. An
   index loop (not [Stampset.iter]) keeps it closure-free. *)
let add_stamped t ~blocks ~edges =
  let new_blocks = ref 0 in
  for k = 0 to Sp_util.Stampset.cardinal blocks - 1 do
    let b = Sp_util.Stampset.member blocks k in
    if not (Bitset.mem t.block_cover b) then begin
      Bitset.add t.block_cover b;
      incr new_blocks
    end
  done;
  let new_edges = ref 0 in
  for k = 0 to Sp_util.Stampset.cardinal edges - 1 do
    let e = Sp_util.Stampset.member edges k in
    if not (Bitset.mem t.edge_cover e) then begin
      Bitset.add t.edge_cover e;
      incr new_edges
    end
  done;
  t.nblocks <- t.nblocks + !new_blocks;
  t.nedges <- t.nedges + !new_edges;
  { new_blocks = !new_blocks; new_edges = !new_edges }

let would_add t ~blocks ~edges =
  {
    new_blocks = Bitset.diff_cardinal blocks t.block_cover;
    new_edges = Bitset.diff_cardinal edges t.edge_cover;
  }

module Json = Sp_obs.Json

let bitset_to_json b =
  Json.Obj
    [ ("capacity", Json.Num (float_of_int (Bitset.capacity b)));
      ( "elements",
        Json.Arr
          (List.map (fun i -> Json.Num (float_of_int i)) (Bitset.elements b))
      )
    ]

let bitset_of_json j =
  let open Json.Decode in
  let cap = int_field "capacity" j in
  let elems =
    List.map
      (function
        | Json.Num f when Float.is_integer f -> int_of_float f
        | _ -> error "bitset elements: expected integers")
      (arr_field "elements" j)
  in
  match Bitset.of_list cap elems with
  | b -> b
  | exception Invalid_argument msg -> Json.Decode.error "bitset: %s" msg

let to_json t =
  Json.Obj
    [ ("blocks", bitset_to_json t.block_cover);
      ("edges", bitset_to_json t.edge_cover)
    ]

let of_json j =
  let open Json.Decode in
  let block_cover = bitset_of_json (field "blocks" j) in
  let edge_cover = bitset_of_json (field "edges" j) in
  {
    block_cover;
    edge_cover;
    nblocks = Bitset.cardinal block_cover;
    nedges = Bitset.cardinal edge_cover;
  }

let blocks t = t.block_cover

let snapshot_blocks t = Bitset.copy t.block_cover

let mem_block t b = Bitset.mem t.block_cover b

let capacities t = (Bitset.capacity t.block_cover, Bitset.capacity t.edge_cover)

let blocks_covered t = t.nblocks

let edges_covered t = t.nedges
