module Bitset = Sp_util.Bitset

type t = {
  block_cover : Bitset.t;
  edge_cover : Bitset.t;
  mutable nblocks : int;
  mutable nedges : int;
}

let create ~num_blocks ~num_edges =
  {
    block_cover = Bitset.create num_blocks;
    edge_cover = Bitset.create num_edges;
    nblocks = 0;
    nedges = 0;
  }

let copy t =
  {
    block_cover = Bitset.copy t.block_cover;
    edge_cover = Bitset.copy t.edge_cover;
    nblocks = t.nblocks;
    nedges = t.nedges;
  }

type delta = { new_blocks : int; new_edges : int }

let add t ~blocks ~edges =
  let new_blocks = Bitset.union_into ~dst:t.block_cover blocks in
  let new_edges = Bitset.union_into ~dst:t.edge_cover edges in
  t.nblocks <- t.nblocks + new_blocks;
  t.nedges <- t.nedges + new_edges;
  { new_blocks; new_edges }

let would_add t ~blocks ~edges =
  {
    new_blocks = Bitset.diff_cardinal blocks t.block_cover;
    new_edges = Bitset.diff_cardinal edges t.edge_cover;
  }

let blocks t = t.block_cover

let snapshot_blocks t = Bitset.copy t.block_cover

let mem_block t b = Bitset.mem t.block_cover b

let blocks_covered t = t.nblocks

let edges_covered t = t.nedges
