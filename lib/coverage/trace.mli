(** Execution-trace postprocessing.

    The paper collects KCOV traces (sequences of executed kernel basic
    blocks) and postprocesses them into "unique, directional pairs of basic
    blocks, or edges" (§5.3.1). These helpers implement that step plus the
    per-trace block set.

    Deduplication runs over a stamped open-addressed seen-set. Callers on a
    hot path (dataset extraction postprocesses every trace of every mutant)
    should allocate one {!seen} and pass it to every call: reuse resets it
    in O(1) instead of building a fresh table per trace. *)

type seen
(** Reusable scratch for the dedup passes. Not shareable across domains,
    and each call resets it — use one per concurrent postprocessing
    pipeline. *)

val create_seen : unit -> seen

val edge_pairs : ?seen:seen -> int list -> (int * int) list
(** Unique directional consecutive pairs, in first-occurrence order. *)

val block_set : num_blocks:int -> int list -> Sp_util.Bitset.t

val unique_blocks : ?seen:seen -> int list -> int list
(** Distinct block ids in first-occurrence order. *)
