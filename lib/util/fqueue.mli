(** Amortized-O(1) FIFO queue.

    The campaign/inference hot path enqueues one pending request per loop
    iteration; a naive [xs @ [x]] list-append queue makes that O(n) per push
    (quadratic over a campaign). This queue is the standard two-list design:
    O(1) push, amortized O(1) pop, O(1) length. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Enqueue at the back. *)

val pop_opt : 'a t -> 'a option
(** Dequeue from the front; [None] when empty. *)

val peek_opt : 'a t -> 'a option

val to_list : 'a t -> 'a list
(** Front (oldest) first. *)

val of_list : 'a list -> 'a t
(** The head of the list becomes the front of the queue. *)

val clear : 'a t -> unit

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest first. *)

val fold : ('a -> 'b -> 'a) -> 'a -> 'b t -> 'a

val partition : ('a -> bool) -> 'a t -> 'a list
(** [partition p t] removes and returns (oldest first) every element
    satisfying [p], keeping the rest in [t] in their original order. One
    O(n) pass — for pollers that drain a ready subset from the middle of
    the queue. *)
