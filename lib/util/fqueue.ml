(* Two-list functional-queue core behind a small mutable record: [front] is
   the head of the queue in order, [back] holds recent pushes in reverse.
   Push is O(1); pop reverses [back] into [front] only when [front] runs
   out, so every element is moved at most once — amortized O(1). *)

type 'a t = {
  mutable front : 'a list;
  mutable back : 'a list;
  mutable len : int;
}

let create () = { front = []; back = []; len = 0 }

let length t = t.len

let is_empty t = t.len = 0

let push t x =
  t.back <- x :: t.back;
  t.len <- t.len + 1

let norm t =
  if t.front = [] then begin
    t.front <- List.rev t.back;
    t.back <- []
  end

let pop_opt t =
  norm t;
  match t.front with
  | [] -> None
  | x :: rest ->
    t.front <- rest;
    t.len <- t.len - 1;
    Some x

let peek_opt t =
  norm t;
  match t.front with [] -> None | x :: _ -> Some x

let to_list t = t.front @ List.rev t.back

let of_list l = { front = l; back = []; len = List.length l }

let clear t =
  t.front <- [];
  t.back <- [];
  t.len <- 0

let iter f t =
  List.iter f t.front;
  List.iter f (List.rev t.back)

let fold f acc t = List.fold_left f (List.fold_left f acc t.front) (List.rev t.back)

(* Used by pollers that deliver an arbitrary subset (e.g. ready requests
   whose completion times are not monotone in queue order): one O(n) pass,
   relative order preserved on both sides. *)
let partition p t =
  let yes, no = List.partition p (to_list t) in
  t.front <- no;
  t.back <- [];
  t.len <- List.length no;
  yes
