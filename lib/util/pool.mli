(** Fixed-size domain worker pool with per-worker task queues.

    The parallel campaign executor runs one epoch per shard between
    snapshot barriers; this pool owns the worker domains so they are
    spawned once per campaign, not once per epoch. Tasks are submitted
    round-robin to per-worker queues; an idle worker steals from a
    sibling's queue before sleeping, so one slow shard cannot strand
    queued work behind it. A raising task resolves its handle to
    [Error] — the worker survives and keeps draining the queues.

    Observability lands in a {!Metrics} registry (updated only under the
    pool lock, since registries are not thread-safe): [pool.tasks] and
    [pool.steals] counters, [pool.idle_ns] (time a worker spent parked
    waiting for work) and [pool.barrier_wait_ns] (time the submitter
    spent blocked in {!run_all}) histograms. With [tracer_for], each
    worker additionally records a [pool.task] span per executed task and
    a [pool.steal] instant per steal into its own per-worker tracer. *)

type t

val create :
  ?metrics:Metrics.t ->
  ?tracer_for:(int -> Sp_obs.Tracer.t) ->
  ?faults:Faults.t ->
  workers:int ->
  unit ->
  t
(** Spawn [workers] domains (>= 1). [tracer_for i] is called once per
    worker, on the calling domain, before any worker starts; worker [i]
    then owns (and is the only writer of) that tracer.

    With an enabled [faults] plan (default {!Faults.disabled}), each
    {!submit} consults site ["pool.task"] at the pool-wide submission
    ordinal — on the submitting domain, so the decision is deterministic
    per submission order — and an injected task resolves its handle to
    [Error (Faults.Injected "pool.task")] without running the payload. *)

val workers : t -> int

val metrics : t -> Metrics.t

val in_flight : t -> int
(** Submitted tasks whose handle has not yet resolved — the scheduler's
    admission signal ([workers t - in_flight t] slots are free). Reads
    under the pool lock; the value is advisory (a task may resolve
    between the read and any decision taken on it). *)

type 'a handle

val submit : t -> (unit -> 'a) -> 'a handle
(** Enqueue a task. Raises [Invalid_argument] after {!shutdown}. *)

val await : 'a handle -> ('a, exn) result
(** Block until the task has run. A task that raised reports its
    exception here instead of killing the worker. *)

val await_full : 'a handle -> ('a, exn * Printexc.raw_backtrace) result
(** Like {!await}, but a failed task also carries the backtrace captured
    at the raise site on the worker domain — re-raise with
    [Printexc.raise_with_backtrace] so failure records point at the real
    failure site, not at the await. *)

val run_all : t -> (unit -> 'a) list -> ('a, exn) result list
(** Submit every thunk, then await them all (a barrier); results are in
    submission order. Records the blocked time as [pool.barrier_wait_ns]. *)

val shutdown : t -> unit
(** Drain every queued task, then join the worker domains. Idempotent
    and safe under concurrency: the first caller performs the drain +
    join; any concurrent caller blocks until the pool is fully down, so
    no [shutdown] ever returns while workers are still running. A
    [submit] racing with shutdown either enqueues (and is drained) or
    raises [Invalid_argument] — it never deadlocks. *)

val with_pool :
  ?metrics:Metrics.t ->
  ?tracer_for:(int -> Sp_obs.Tracer.t) ->
  ?faults:Faults.t ->
  workers:int ->
  (t -> 'a) ->
  'a
(** [create], run, then [shutdown] (also on exceptions). *)

(** Bounded multi-producer multi-consumer channel on [Mutex]/[Condition];
    the cross-domain hand-off primitive for streaming pipelines (the pool
    itself uses per-worker queues, not a channel). *)
module Chan : sig
  type 'a t

  exception Closed

  val create : ?faults:Faults.t -> capacity:int -> unit -> 'a t
  (** Raises [Invalid_argument] when [capacity < 1]. With an enabled
      [faults] plan, {!send} and {!recv} consult sites ["chan.send"] /
      ["chan.recv"] at per-channel operation ordinals (assigned under
      the channel lock) and raise [Faults.Injected] when the plan says
      so, before touching the buffer. *)

  val send : 'a t -> 'a -> unit
  (** Blocks while full. Raises {!Closed} if the channel is (or becomes)
      closed while sending. *)

  val try_send : 'a t -> 'a -> bool
  (** Non-blocking; [false] when full. Raises {!Closed} when closed. *)

  val recv : 'a t -> 'a option
  (** Blocks while empty and open; [None] once the channel is closed and
      drained. *)

  val try_recv : 'a t -> 'a option
  (** Non-blocking; [None] when currently empty (even if open). *)

  val close : 'a t -> unit
  (** Wake all blocked senders/receivers. Buffered items remain
      receivable. Idempotent. *)

  val length : 'a t -> int
end
