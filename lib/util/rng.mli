(** Deterministic, splittable pseudo-random number generator.

    The whole reproduction must be replayable from a single seed, including
    experiments that run "concurrent" components (fuzzer threads, inference
    workers). A SplitMix64 generator supports cheap, well-distributed
    splitting, so each component gets an independent stream derived from its
    parent without any shared mutable state between components. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves separately. *)

val state : t -> int64
(** The full internal state. [state]/[set_state]/[of_state] exist so that
    campaign snapshots can persist and later resume a stream exactly:
    a generator restored from [state t] replays [t]'s future draws
    bit-for-bit. *)

val set_state : t -> int64 -> unit
(** Overwrite the internal state with a previously captured one. *)

val of_state : int64 -> t
(** A fresh generator whose next draws equal those of the generator
    [state] was captured from. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val split_named : t -> string -> t
(** [split_named t label] derives an independent stream keyed by [label];
    the same [t] state and label always give the same stream, regardless of
    how many other splits were taken. Used to decouple subsystem streams. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive.
    Exactly uniform: draws in the topmost partial cycle of the 62-bit
    range are rejected and retried rather than folded (modulo-biased)
    onto small residues. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val coin : t -> float -> bool
(** [coin t p] is [true] with probability [p]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val sample : t -> 'a array -> int -> 'a list
(** [sample t arr k] draws [min k (length arr)] distinct elements, uniformly
    without replacement. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val weighted : t -> ('a * float) list -> 'a
(** [weighted t choices] draws proportionally to the (positive) weights;
    non-finite weights (NaN, infinities) are treated as 0. Raises
    [Invalid_argument] if the list is empty or no weight is positive and
    finite. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)
