(** Deterministic fault injection: a seeded, named-site fault plan.

    A fault plan decides, per (site, occurrence), whether an armed
    injection point fires. Sites are short stable strings
    (["pool.task"], ["chan.send"], ["alpha/shard.epoch"], ...); the
    occurrence index [k] is a deterministic per-site ordinal maintained
    by the caller (submission count, barrier number, ...). A decision is
    a pure function of the plan and (site, k):

    - if the plan's explicit {e schedule} lists [k] for the site, the
      fault fires;
    - otherwise a throwaway RNG split off the plan seed by
      ["site#k"] is compared against the site's rate (its entry in
      {e rates}, or the plan's default rate).

    Because {!Sp_util.Rng.split_named} derives without advancing the
    parent, decisions are order-independent: the same (seed, site, k)
    always fires or always doesn't, no matter how many other sites were
    consulted in between. That is what makes injected-failure runs
    replay byte-identically.

    Per-site hit counts are kept under a mutex so sites may be
    consulted from worker domains (the [Chan] injection points);
    everything else is immutable after {!create}. *)

exception Injected of string
(** Raised by {!fire} (and by armed injection points) with the site
    name. Registered with a printer so captured failure records read
    [Fault injected at <site>]. *)

type t

val disabled : t
(** The inert plan: {!should_fail} is always [false], {!enabled} is
    [false]. Armed code paths treat it as "no fault injection" and
    must add zero behavior — a run with [disabled] is byte-identical
    to a run built before the injection point existed. *)

val create :
  ?default_rate:float ->
  ?rates:(string * float) list ->
  ?schedule:(string * int list) list ->
  seed:int ->
  unit ->
  t
(** [default_rate] (default [0.0]) and every rate must be in [0, 1];
    raises [Invalid_argument] otherwise. [schedule] maps a site to the
    exact occurrence indices that must fire regardless of rates. *)

val of_json : Sp_obs.Json.t -> (t, string) result
(** Load a plan from its JSON form:
    {[ { "seed": 42,
         "default_rate": 0.0,
         "rates": { "pool.task": 0.05 },
         "schedule": { "beta/shard.epoch": [0, 2] } } ]}
    Every field except ["seed"] is optional. *)

val enabled : t -> bool
(** [false] only for {!disabled}. Armed code uses this to skip even the
    ordinal bookkeeping when no plan is loaded. *)

val should_fail : t -> string -> k:int -> bool
(** Consult the plan for occurrence [k] of the site. Records the
    consultation (and the hit, if any) in {!site_stats}. *)

val set_observer : t -> (string -> k:int -> unit) -> unit
(** Install a callback invoked (outside the plan's lock, possibly from
    a worker domain) for every fault that fires — the hook the serve
    path uses to turn injections into structured events. A no-op on
    {!disabled}. *)

val fire : t -> string -> k:int -> unit
(** [fire t site ~k] raises [Injected site] iff
    [should_fail t site ~k]. *)

val injected : t -> int
(** Total faults injected through this plan so far. *)

val site_stats : t -> (string * (int * int)) list
(** Per-site [(consulted, injected)] counts, sorted by site name. *)
