(** Sparse mutable integer sets over [0, capacity) with O(1) bulk clear.

    The complement of {!Bitset} for hot loops that fill and empty a set once
    per execution: [clear] bumps a generation stamp instead of zeroing
    storage, membership is one array load and compare, and iteration visits
    only the members (in insertion order), not the whole universe. The
    executor's per-run coverage scratch is the intended client; anything
    that must outlive the next [clear] is materialized with {!to_bitset}. *)

type t

val create : int -> t
(** [create capacity] is the empty set over [0, capacity). *)

val capacity : t -> int

val clear : t -> unit
(** O(1): invalidates every member by advancing the generation stamp. *)

val add : t -> int -> unit
(** Idempotent. Raises [Invalid_argument] when the index is out of range. *)

val mem : t -> int -> bool

val cardinal : t -> int

val is_empty : t -> bool

val member : t -> int -> int
(** [member t k] is the [k]-th element in insertion order,
    [0 <= k < cardinal t]; an allocation-free alternative to {!iter}. *)

val iter : (int -> unit) -> t -> unit
(** Insertion order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list
(** Ascending order (matching {!Bitset.elements}). *)

val to_bitset : t -> Bitset.t
(** Independent dense snapshot sized [capacity t]; safe to hold across
    later [clear]/[add] cycles. *)
