type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  (* SplitMix64 finalizer (Stafford variant 13). *)
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let state t = t.state

let set_state t s = t.state <- s

let of_state s = { state = s }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let split_named t label =
  (* FNV-1a over the label, mixed with the *current* state (not advanced), so
     that named streams are stable under unrelated draws from siblings. *)
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    label;
  { state = mix64 (Int64.logxor t.state !h) }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  (* Rejection sampling: the masked draw is uniform over [0, max_int]
     (2^62 values), and plain [v mod bound] is biased towards small
     residues whenever [bound] does not divide 2^62. Discarding the
     topmost partial cycle — the [2^62 mod bound] values above [limit] —
     makes every residue exactly equally likely; the rejection
     probability is below [bound / 2^62] per draw. *)
  let rem = ((max_int mod bound) + 1) mod bound in
  let limit = max_int - rem in
  let rec draw () =
    let v = Int64.to_int (Int64.logand (bits64 t) mask) in
    if v > limit then draw () else v mod bound
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let coin t p = float t 1.0 < p

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let choose_list t l =
  match l with
  | [] -> invalid_arg "Rng.choose_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t arr k =
  let n = Array.length arr in
  let k = min k n in
  if k = 0 then []
  else begin
    let idx = Array.init n Fun.id in
    (* Partial Fisher–Yates: only the first [k] positions need settling. *)
    for i = 0 to k - 1 do
      let j = i + int t (n - i) in
      let tmp = idx.(i) in
      idx.(i) <- idx.(j);
      idx.(j) <- tmp
    done;
    List.init k (fun i -> arr.(idx.(i)))
  end

let weighted t choices =
  (* Non-finite weights count as zero. [Float.max nan 0.0] is NaN, and a
     NaN total slips past a [total <= 0.0] guard (NaN compares false), so
     a single NaN weight used to poison the cumulative scan and return an
     arbitrary element; an infinite weight has no meaningful proportional
     draw either. *)
  let clamp w = if Float.is_finite w && w > 0.0 then w else 0.0 in
  let total = List.fold_left (fun acc (_, w) -> acc +. clamp w) 0.0 choices in
  if not (total > 0.0) then invalid_arg "Rng.weighted: no positive weight";
  let x = float t total in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.weighted: empty list"
    | [ (v, _) ] -> v
    | (v, w) :: rest ->
      let acc = acc +. clamp w in
      if x < acc then v else pick acc rest
  in
  pick 0.0 choices

let gaussian t =
  let rec draw () =
    let u = float t 1.0 in
    if u <= 1e-12 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)
