(* Counters are plain ints in a table. Histograms keep exact streaming
   moments (count/sum/min/max) plus a bounded reservoir sample for
   percentiles, so a histogram's footprint is constant no matter how many
   observations a multi-day campaign records. The reservoir RNG is
   deterministic (seeded from the metric name), keeping campaigns
   replayable. *)

let reservoir_size = 1024

type hist = {
  mutable count : int;
  mutable sum : float;
  mutable minv : float;
  mutable maxv : float;
  samples : float array;  (* reservoir; first [min count size] slots live *)
  rng : Rng.t;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; hists = Hashtbl.create 32 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add t.counters name r;
    r

let incr ?(by = 1) t name =
  let r = counter_ref t name in
  r := !r + by

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort compare

let hist_for t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
    let h =
      {
        count = 0;
        sum = 0.0;
        minv = infinity;
        maxv = neg_infinity;
        samples = Array.make reservoir_size 0.0;
        rng = Rng.split_named (Rng.create 0x6e7) name;
      }
    in
    Hashtbl.add t.hists name h;
    h

let observe t name v =
  let h = hist_for t name in
  h.count <- h.count + 1;
  h.sum <- h.sum +. v;
  if v < h.minv then h.minv <- v;
  if v > h.maxv then h.maxv <- v;
  if h.count <= reservoir_size then h.samples.(h.count - 1) <- v
  else begin
    (* Vitter's algorithm R: slot i is replaced with probability size/count,
       keeping the reservoir a uniform sample of everything seen. *)
    let j = Rng.int h.rng h.count in
    if j < reservoir_size then h.samples.(j) <- v
  end

let time t name f =
  let t0 = Sys.time () in
  Fun.protect ~finally:(fun () -> observe t name (Sys.time () -. t0)) f

let time_wall t name f =
  let t0 = Unix.gettimeofday () in
  Fun.protect ~finally:(fun () -> observe t name (Unix.gettimeofday () -. t0)) f

type summary = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summary_of_hist h =
  let live = Array.to_list (Array.sub h.samples 0 (min h.count reservoir_size)) in
  {
    count = h.count;
    sum = h.sum;
    mean = h.sum /. float_of_int h.count;
    min = h.minv;
    max = h.maxv;
    p50 = Stats.percentile live 50.0;
    p90 = Stats.percentile live 90.0;
    p99 = Stats.percentile live 99.0;
  }

let summary t name =
  match Hashtbl.find_opt t.hists name with
  | Some h when h.count > 0 -> Some (summary_of_hist h)
  | Some _ | None -> None

let summaries t =
  Hashtbl.fold
    (fun k (h : hist) acc -> if h.count > 0 then (k, summary_of_hist h) :: acc else acc)
    t.hists []
  |> List.sort compare

let merge_into ~dst src =
  List.iter (fun (name, v) -> incr ~by:v dst name) (counters src);
  Hashtbl.iter
    (fun name (h : hist) ->
      let n = min h.count reservoir_size in
      for i = 0 to n - 1 do
        observe dst name h.samples.(i)
      done)
    src.hists

let render t =
  let buf = Buffer.create 256 in
  let cs = counters t in
  if cs <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" k v)) cs
  end;
  let hs = summaries t in
  if hs <> [] then begin
    Buffer.add_string buf "timers/histograms:\n";
    List.iter
      (fun (k, s) ->
        Buffer.add_string buf
          (Printf.sprintf
             "  %-40s n=%d sum=%.4g mean=%.4g min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g\n"
             k s.count s.sum s.mean s.min s.p50 s.p90 s.p99 s.max))
      hs
  end;
  if cs = [] && hs = [] then Buffer.add_string buf "(no metrics recorded)\n";
  Buffer.contents buf

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.hists
