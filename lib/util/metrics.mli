(** Lightweight counter/timer registry for hot-path observability.

    The fuzz loop, the VM cost model, and the inference service all record
    into a registry: named monotonic counters ("how many"), and histograms
    of observations ("how long / how much"), used for both wall-clock CPU
    timings and virtual-clock durations. Histograms store constant space
    per metric (streaming moments + a bounded deterministic reservoir for
    percentiles), so recording is safe on paths hit millions of times per
    campaign. Not thread-safe; one registry per component. *)

type t

val create : unit -> t

(** {1 Counters} *)

val incr : ?by:int -> t -> string -> unit

val counter : t -> string -> int
(** 0 for a name never incremented. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

(** {1 Histograms / timers} *)

val observe : t -> string -> float -> unit
(** Record one observation (a duration, a batch size, ...). *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk and [observe] its CPU time ([Sys.time]) in seconds under
    the given name, whether it returns or raises.

    [Sys.time] is {e process-wide} CPU time: under a multi-domain run
    every domain reads the same accumulating clock, so a per-shard timer
    recorded with [time] is inflated by whatever the other domains were
    doing concurrently. Only use [time] for work that runs while no other
    domain is busy (e.g. merge-time work on the main domain); use
    {!time_wall} for anything recorded from (or compared across) worker
    domains. By convention metric names state which clock they carry:
    [*_cpu_s] for [time], [*_wall_s] / [*_ns] for wall-clock, and
    [*_virtual_s] for the campaign's virtual clock. *)

val time_wall : t -> string -> (unit -> 'a) -> 'a
(** [time] on the monotonic wall clock ([Unix.gettimeofday]) instead of
    process CPU time — the correct timer for durations measured on worker
    domains, where [Sys.time] counts every domain's CPU at once. *)

type summary = {
  count : int;
  sum : float;
  mean : float;
  min : float;
  max : float;
  p50 : float;  (** percentiles are estimated from a 1024-sample reservoir *)
  p90 : float;
  p99 : float;
}

val summary : t -> string -> summary option
(** [None] for a name with no observations. *)

val summaries : t -> (string * summary) list
(** Sorted by name. *)

(** {1 Registry-level operations} *)

val merge_into : dst:t -> t -> unit
(** Fold another registry's counters and (sampled) observations into
    [dst] — used to combine per-component registries into one report. *)

val render : t -> string
(** Human-readable dump, stable ordering. *)

val reset : t -> unit
