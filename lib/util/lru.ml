(* Hashtbl + intrusive doubly-linked recency list: O(1) find / put / evict.
   Recency order and freshness are separate axes: a hit refreshes recency
   (the entry moves to the front) but never the write stamp, so TTL expiry
   is measured from the last [put] — a stale answer cannot be kept alive by
   being popular. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable written_at : float;
  mutable prev : ('k, 'v) node option;  (* towards the front (most recent) *)
  mutable next : ('k, 'v) node option;  (* towards the back (least recent) *)
}

type ('k, 'v) t = {
  capacity : int;
  ttl : float option;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;  (* most recently used *)
  mutable tail : ('k, 'v) node option;  (* least recently used *)
  mutable evictions : int;
  mutable expirations : int;
}

let create ?ttl ~capacity () =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  (match ttl with
  | Some t when t <= 0.0 -> invalid_arg "Lru.create: ttl must be positive"
  | Some _ | None -> ());
  {
    capacity;
    ttl;
    table = Hashtbl.create (min capacity 1024);
    head = None;
    tail = None;
    evictions = 0;
    expirations = 0;
  }

let length t = Hashtbl.length t.table

let capacity t = t.capacity

let evictions t = t.evictions

let expirations t = t.expirations

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table k

let expired t ~now node =
  match t.ttl with None -> false | Some ttl -> now -. node.written_at > ttl

let find t ~now k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
    if expired t ~now node then begin
      unlink t node;
      Hashtbl.remove t.table k;
      t.expirations <- t.expirations + 1;
      None
    end
    else begin
      unlink t node;
      push_front t node;
      Some node.value
    end

let mem t ~now k = find t ~now k <> None

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key;
    t.evictions <- t.evictions + 1

let put t ~now k v =
  (match Hashtbl.find_opt t.table k with
  | Some node ->
    node.value <- v;
    node.written_at <- now;
    unlink t node;
    push_front t node
  | None ->
    if Hashtbl.length t.table >= t.capacity then evict_tail t;
    let node = { key = k; value = v; written_at = now; prev = None; next = None } in
    Hashtbl.replace t.table k node;
    push_front t node);
  assert (Hashtbl.length t.table <= t.capacity)

let fold f acc t =
  Hashtbl.fold (fun k node acc -> f acc k node.value) t.table acc

let to_list t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some node -> walk ((node.key, node.value, node.written_at) :: acc) node.next
  in
  walk [] t.head

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
