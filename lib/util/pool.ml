module Tracer = Sp_obs.Tracer

type task = unit -> unit

(* Shutdown is a one-way walk Live -> Draining -> Down. Exactly one
   caller performs the Draining work (broadcast + join); every other
   concurrent [shutdown] blocks on [idle] until the pool is Down, so no
   caller ever returns while worker domains are still running. *)
type lifecycle = Live | Draining | Down

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* signalled on submit and on shutdown *)
  idle : Condition.t;  (* signalled when the pool reaches Down *)
  queues : task Queue.t array;  (* one per worker, all guarded by [lock] *)
  tracers : Tracer.t array;  (* one per worker; written only by its owner *)
  mutable rr : int;  (* next queue for round-robin submission *)
  mutable state : lifecycle;
  mutable in_flight : int;  (* submitted tasks whose handle is unresolved *)
  mutable domains : unit Domain.t array;
  metrics : Metrics.t;
  faults : Faults.t;
  mutable task_seq : int;  (* submission ordinal, the "pool.task" fault index *)
}

type 'a handle = {
  h_lock : Mutex.t;
  h_done : Condition.t;
  mutable result : ('a, exn * Printexc.raw_backtrace) result option;
}

let now_ns () = Unix.gettimeofday () *. 1e9

(* All [t.metrics] updates happen with [t.lock] held: the registry is not
   thread-safe. *)

let take t i =
  if not (Queue.is_empty t.queues.(i)) then Some (Queue.pop t.queues.(i))
  else begin
    let n = Array.length t.queues in
    let found = ref None in
    let k = ref 1 in
    while !found = None && !k < n do
      let j = (i + !k) mod n in
      if not (Queue.is_empty t.queues.(j)) then begin
        Metrics.incr t.metrics "pool.steals";
        Tracer.instant t.tracers.(i) "pool.steal";
        found := Some (Queue.pop t.queues.(j))
      end;
      incr k
    done;
    !found
  end

let rec next_task t i =
  match take t i with
  | Some _ as task -> task
  | None ->
    if t.state <> Live then None
    else begin
      let parked = now_ns () in
      Condition.wait t.work t.lock;
      Metrics.observe t.metrics "pool.idle_ns" (now_ns () -. parked);
      next_task t i
    end

let worker t i () =
  let rec loop () =
    Mutex.lock t.lock;
    match next_task t i with
    | None -> Mutex.unlock t.lock
    | Some task ->
      Metrics.incr t.metrics "pool.tasks";
      Mutex.unlock t.lock;
      Tracer.span t.tracers.(i) "pool.task" task;
      loop ()
  in
  loop ()

let create ?metrics ?tracer_for ?(faults = Faults.disabled) ~workers () =
  if workers < 1 then invalid_arg "Pool.create: workers must be >= 1";
  let tracers =
    (* Handed out before the domains spawn, on the caller's domain; each
       worker then writes only its own tracer. *)
    match tracer_for with
    | Some f -> Array.init workers f
    | None -> Array.make workers Tracer.null
  in
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queues = Array.init workers (fun _ -> Queue.create ());
      tracers;
      rr = 0;
      state = Live;
      in_flight = 0;
      domains = [||];
      metrics = (match metrics with Some m -> m | None -> Metrics.create ());
      faults;
      task_seq = 0;
    }
  in
  t.domains <- Array.init workers (fun i -> Domain.spawn (worker t i));
  t

let workers t = Array.length t.queues

let metrics t = t.metrics

let in_flight t =
  Mutex.lock t.lock;
  let n = t.in_flight in
  Mutex.unlock t.lock;
  n

let submit t f =
  let h = { h_lock = Mutex.create (); h_done = Condition.create (); result = None } in
  Mutex.lock t.lock;
  if t.state <> Live then begin
    Mutex.unlock t.lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  (* The fault decision is taken here, on the submitting domain, keyed by
     the submission ordinal — so it is as deterministic as the submission
     order itself, regardless of which worker later runs the task. *)
  let f =
    if Faults.enabled t.faults then begin
      let k = t.task_seq in
      t.task_seq <- t.task_seq + 1;
      if Faults.should_fail t.faults "pool.task" ~k then
        fun () -> raise (Faults.Injected "pool.task")
      else f
    end
    else f
  in
  let task () =
    let r =
      try Ok (f ())
      with e ->
        let bt = Printexc.get_raw_backtrace () in
        Error (e, bt)
    in
    Mutex.lock t.lock;
    t.in_flight <- t.in_flight - 1;
    Mutex.unlock t.lock;
    Mutex.lock h.h_lock;
    h.result <- Some r;
    Condition.broadcast h.h_done;
    Mutex.unlock h.h_lock
  in
  t.in_flight <- t.in_flight + 1;
  Queue.push task t.queues.(t.rr);
  t.rr <- (t.rr + 1) mod Array.length t.queues;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  h

let await_full h =
  Mutex.lock h.h_lock;
  while h.result = None do
    Condition.wait h.h_done h.h_lock
  done;
  let r = match h.result with Some r -> r | None -> assert false in
  Mutex.unlock h.h_lock;
  r

let await h =
  match await_full h with Ok v -> Ok v | Error (e, _) -> Error e

let run_all t thunks =
  let handles = List.map (submit t) thunks in
  let blocked = now_ns () in
  let results = List.map await handles in
  Mutex.lock t.lock;
  Metrics.observe t.metrics "pool.barrier_wait_ns" (now_ns () -. blocked);
  Mutex.unlock t.lock;
  results

let shutdown t =
  Mutex.lock t.lock;
  match t.state with
  | Live ->
    t.state <- Draining;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* Workers finish already-queued tasks (they only park on [work]
       while Live), then exit; joining outside the lock lets them drain. *)
    Array.iter Domain.join t.domains;
    Mutex.lock t.lock;
    t.state <- Down;
    Condition.broadcast t.idle;
    Mutex.unlock t.lock
  | Draining ->
    while t.state <> Down do
      Condition.wait t.idle t.lock
    done;
    Mutex.unlock t.lock
  | Down -> Mutex.unlock t.lock

let with_pool ?metrics ?tracer_for ?faults ~workers f =
  let t = create ?metrics ?tracer_for ?faults ~workers () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

module Chan = struct
  type 'a t = {
    lock : Mutex.t;
    not_full : Condition.t;
    not_empty : Condition.t;
    buf : 'a Queue.t;
    capacity : int;
    mutable closed : bool;
    faults : Faults.t;
    mutable send_seq : int;  (* "chan.send" fault index *)
    mutable recv_seq : int;  (* "chan.recv" fault index *)
  }

  exception Closed

  let create ?(faults = Faults.disabled) ~capacity () =
    if capacity < 1 then invalid_arg "Chan.create: capacity must be >= 1";
    {
      lock = Mutex.create ();
      not_full = Condition.create ();
      not_empty = Condition.create ();
      buf = Queue.create ();
      capacity;
      closed = false;
      faults;
      send_seq = 0;
      recv_seq = 0;
    }

  (* Fault ordinals are assigned under the channel lock, so a given
     (seed, plan, op-interleaving) injects at the same operations. *)
  let chan_fault t site seq =
    Faults.enabled t.faults
    &&
    let k = seq () in
    Faults.should_fail t.faults site ~k

  let send t x =
    Mutex.lock t.lock;
    if
      chan_fault t "chan.send" (fun () ->
          let k = t.send_seq in
          t.send_seq <- k + 1;
          k)
    then begin
      Mutex.unlock t.lock;
      raise (Faults.Injected "chan.send")
    end;
    while (not t.closed) && Queue.length t.buf >= t.capacity do
      Condition.wait t.not_full t.lock
    done;
    if t.closed then begin
      Mutex.unlock t.lock;
      raise Closed
    end;
    Queue.push x t.buf;
    Condition.broadcast t.not_empty;
    Mutex.unlock t.lock

  let try_send t x =
    Mutex.lock t.lock;
    if t.closed then begin
      Mutex.unlock t.lock;
      raise Closed
    end;
    let ok = Queue.length t.buf < t.capacity in
    if ok then begin
      Queue.push x t.buf;
      Condition.broadcast t.not_empty
    end;
    Mutex.unlock t.lock;
    ok

  let recv t =
    Mutex.lock t.lock;
    if
      chan_fault t "chan.recv" (fun () ->
          let k = t.recv_seq in
          t.recv_seq <- k + 1;
          k)
    then begin
      Mutex.unlock t.lock;
      raise (Faults.Injected "chan.recv")
    end;
    while Queue.is_empty t.buf && not t.closed do
      Condition.wait t.not_empty t.lock
    done;
    let r =
      if Queue.is_empty t.buf then None
      else begin
        let x = Queue.pop t.buf in
        Condition.broadcast t.not_full;
        Some x
      end
    in
    Mutex.unlock t.lock;
    r

  let try_recv t =
    Mutex.lock t.lock;
    let r =
      if Queue.is_empty t.buf then None
      else begin
        let x = Queue.pop t.buf in
        Condition.broadcast t.not_full;
        Some x
      end
    in
    Mutex.unlock t.lock;
    r

  let close t =
    Mutex.lock t.lock;
    if not t.closed then begin
      t.closed <- true;
      Condition.broadcast t.not_empty;
      Condition.broadcast t.not_full
    end;
    Mutex.unlock t.lock

  let length t =
    Mutex.lock t.lock;
    let n = Queue.length t.buf in
    Mutex.unlock t.lock;
    n
end
