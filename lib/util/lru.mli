(** Bounded LRU cache with optional TTL expiry.

    Long fuzzing campaigns hit memoization caches millions of times; an
    unbounded [Hashtbl] memo grows for the whole run (the inference
    service's prediction caches were the offender). This cache is bounded
    by construction — inserting into a full cache evicts the least
    recently used entry — and optionally expires entries a fixed TTL after
    they were written.

    Time is supplied by the caller ([~now]), so virtual campaign clocks
    work as well as wall clocks. A [find] hit refreshes the entry's
    recency but {e not} its TTL: freshness is measured from the last
    [put]. All operations are O(1). *)

type ('k, 'v) t

val create : ?ttl:float -> capacity:int -> unit -> ('k, 'v) t
(** [capacity] must be positive; [ttl] (if given) is in the caller's time
    unit. Raises [Invalid_argument] on a non-positive capacity or TTL. *)

val find : ('k, 'v) t -> now:float -> 'k -> 'v option
(** TTL-checked lookup; an expired entry is dropped and reported as a
    miss. A hit moves the entry to most-recently-used. *)

val mem : ('k, 'v) t -> now:float -> 'k -> bool

val put : ('k, 'v) t -> now:float -> 'k -> 'v -> unit
(** Insert or overwrite; resets the entry's TTL stamp. Evicts the least
    recently used entry when the cache is full. *)

val remove : ('k, 'v) t -> 'k -> unit

val length : ('k, 'v) t -> int
(** Always [<= capacity]. *)

val capacity : ('k, 'v) t -> int

val evictions : ('k, 'v) t -> int
(** Entries pushed out by capacity pressure since creation. *)

val expirations : ('k, 'v) t -> int
(** Entries dropped by TTL on lookup since creation. *)

val fold : ('a -> 'k -> 'v -> 'a) -> 'a -> ('k, 'v) t -> 'a
(** Unspecified order. *)

val to_list : ('k, 'v) t -> ('k * 'v * float) list
(** Entries in recency order, most recently used first, each with its
    TTL write stamp. Replaying the result in reverse with
    [put ~now:written_at] reconstructs an equivalent cache — the basis
    for snapshot serialization. *)

val clear : ('k, 'v) t -> unit
