(** ASCII line plots with min/max bands.

    Used by [bench/main.exe] to reproduce the paper's figures (edge coverage
    over fuzzing uptime, Figure 6) in a terminal: each series is drawn with a
    distinct glyph, and a series may carry a band (min..max across repeated
    runs) rendered as a shaded column range. *)

type series = {
  label : string;
  glyph : char;
  points : (float * float) list;          (** (x, mean y) *)
  band : (float * float * float) list;    (** (x, min y, max y); may be [] *)
}

val series :
  ?band:(float * float * float) list ->
  label:string ->
  glyph:char ->
  (float * float) list ->
  series

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  title:string ->
  series list ->
  string
(** Render the plot with axes, tick labels and a legend. [width]/[height]
    are the plotting area in characters (defaults 64x16). *)

val sparkline : ?max_width:int -> ?ascii:bool -> float array -> string
(** A single-row mini-trend of the values, scaled to the series min/max:
    Unicode block glyphs (▁▂▃▄▅▆▇█) by default, a pure-ASCII ramp with
    [~ascii:true]. Non-finite values are filtered out first; an empty (or
    all-non-finite) series renders as [""]; a constant series renders as
    a flat mid-height bar. Series longer than [max_width] (default 64)
    are resampled by bucket means. Used by [snowplow stats] for
    per-metric trends. *)
