module Json = Sp_obs.Json

exception Injected of string

let () =
  Printexc.register_printer (function
    | Injected site -> Some (Printf.sprintf "Fault injected at %s" site)
    | _ -> None)

type t = {
  on : bool;
  base : Rng.t;  (** never advanced; {!Rng.split_named} only *)
  default_rate : float;
  rates : (string, float) Hashtbl.t;
  schedule : (string, int list) Hashtbl.t;
  lock : Mutex.t;
  stats : (string, (int * int) ref) Hashtbl.t;  (** site -> (consulted, hit) *)
  mutable total_injected : int;
  mutable observer : (string -> k:int -> unit) option;
}

let disabled =
  {
    on = false;
    base = Rng.create 0;
    default_rate = 0.0;
    rates = Hashtbl.create 1;
    schedule = Hashtbl.create 1;
    lock = Mutex.create ();
    stats = Hashtbl.create 1;
    total_injected = 0;
    observer = None;
  }

let check_rate what r =
  if not (Float.is_finite r) || r < 0.0 || r > 1.0 then
    invalid_arg (Printf.sprintf "Faults.create: %s rate must be in [0, 1]" what)

let create ?(default_rate = 0.0) ?(rates = []) ?(schedule = []) ~seed () =
  check_rate "default" default_rate;
  let rtbl = Hashtbl.create (max 4 (List.length rates)) in
  List.iter
    (fun (site, r) ->
      check_rate site r;
      Hashtbl.replace rtbl site r)
    rates;
  let stbl = Hashtbl.create (max 4 (List.length schedule)) in
  List.iter (fun (site, ks) -> Hashtbl.replace stbl site ks) schedule;
  {
    on = true;
    base = Rng.create seed;
    default_rate;
    rates = rtbl;
    schedule = stbl;
    lock = Mutex.create ();
    stats = Hashtbl.create 16;
    total_injected = 0;
    observer = None;
  }

let of_json j =
  match Json.Decode.run (fun () ->
      let seed =
        match Json.member "seed" j with
        | Some _ -> Json.Decode.int_field "seed" j
        | None -> 0
      in
      let default_rate =
        match Json.member "default_rate" j with
        | Some (Json.Num r) -> r
        | Some _ -> Json.Decode.error "default_rate: expected a number"
        | None -> 0.0
      in
      let pairs name to_v =
        match Json.member name j with
        | None -> []
        | Some (Json.Obj fields) ->
            List.map (fun (site, v) -> (site, to_v site v)) fields
        | Some _ -> Json.Decode.error "%s: expected an object" name
      in
      let rates =
        pairs "rates" (fun site v ->
            match v with
            | Json.Num r -> r
            | _ -> Json.Decode.error "rates.%s: expected a number" site)
      in
      let schedule =
        pairs "schedule" (fun site v ->
            match v with
            | Json.Arr ks ->
                List.map
                  (function
                    | Json.Num n when Float.is_integer n -> int_of_float n
                    | _ ->
                        Json.Decode.error "schedule.%s: expected integers"
                          site)
                  ks
            | _ ->
                Json.Decode.error "schedule.%s: expected an array" site)
      in
      (seed, default_rate, rates, schedule))
  with
  | Error e -> Error e
  | Ok (seed, default_rate, rates, schedule) -> (
      try Ok (create ~default_rate ~rates ~schedule ~seed ())
      with Invalid_argument m -> Error m)

let enabled t = t.on

let decide t site ~k =
  (match Hashtbl.find_opt t.schedule site with
  | Some ks -> List.mem k ks
  | None -> false)
  ||
  let rate =
    match Hashtbl.find_opt t.rates site with
    | Some r -> r
    | None -> t.default_rate
  in
  rate > 0.0
  && Rng.float (Rng.split_named t.base (site ^ "#" ^ string_of_int k)) 1.0
     < rate

let should_fail t site ~k =
  t.on
  &&
  let hit = decide t site ~k in
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.stats site with
  | Some cell ->
      let c, h = !cell in
      cell := (c + 1, if hit then h + 1 else h)
  | None -> Hashtbl.replace t.stats site (ref (1, if hit then 1 else 0)));
  if hit then t.total_injected <- t.total_injected + 1;
  let observer = t.observer in
  Mutex.unlock t.lock;
  (* Outside the stats lock: the observer (an event-log append) takes
     its own mutex, and nested locks here would pin a lock order. *)
  if hit then Option.iter (fun f -> f site ~k) observer;
  hit

let set_observer t f = if t.on then t.observer <- Some f

let fire t site ~k = if should_fail t site ~k then raise (Injected site)

let injected t =
  Mutex.lock t.lock;
  let n = t.total_injected in
  Mutex.unlock t.lock;
  n

let site_stats t =
  Mutex.lock t.lock;
  let rows = Hashtbl.fold (fun site cell acc -> (site, !cell) :: acc) t.stats [] in
  Mutex.unlock t.lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) rows
