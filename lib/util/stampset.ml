(* Sparse integer set with generation-stamped O(1) bulk clear.

   A member list makes iteration O(cardinal) instead of O(capacity), so a
   nearly-empty set over a large universe (one execution's coverage out of
   tens of thousands of blocks) costs only what it holds. *)

type t = {
  capacity : int;
  stamps : int array;  (* stamps.(i) = stamp  <=>  i is a member *)
  members : int array;  (* first [card] entries, in insertion order *)
  mutable stamp : int;
  mutable card : int;
}

let create capacity =
  if capacity < 0 then invalid_arg "Stampset.create: negative capacity";
  {
    capacity;
    stamps = Array.make capacity 0;
    members = Array.make capacity 0;
    stamp = 1;
    card = 0;
  }

let capacity t = t.capacity

let clear t =
  t.stamp <- t.stamp + 1;
  t.card <- 0

let check t i =
  if i < 0 || i >= t.capacity then invalid_arg "Stampset: index out of range"

let mem t i =
  check t i;
  t.stamps.(i) = t.stamp

let add t i =
  check t i;
  if t.stamps.(i) <> t.stamp then begin
    t.stamps.(i) <- t.stamp;
    t.members.(t.card) <- i;
    t.card <- t.card + 1
  end

let cardinal t = t.card

let is_empty t = t.card = 0

let member t k =
  if k < 0 || k >= t.card then invalid_arg "Stampset.member: bad rank";
  t.members.(k)

let iter f t =
  for k = 0 to t.card - 1 do
    f (Array.unsafe_get t.members k)
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t =
  List.sort compare (List.rev (fold (fun i acc -> i :: acc) t []))

let to_bitset t =
  let b = Bitset.create t.capacity in
  iter (Bitset.add b) t;
  b
