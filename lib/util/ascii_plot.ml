type series = {
  label : string;
  glyph : char;
  points : (float * float) list;
  band : (float * float * float) list;
}

let series ?(band = []) ~label ~glyph points = { label; glyph; points; band }

let bounds all =
  match all with
  | [] -> (0.0, 1.0, 0.0, 1.0)
  | (x0, y0) :: rest ->
    List.fold_left
      (fun (xlo, xhi, ylo, yhi) (x, y) ->
        (Float.min xlo x, Float.max xhi x, Float.min ylo y, Float.max yhi y))
      (x0, x0, y0, y0) rest

let fmt_tick v =
  if Float.abs v >= 10000.0 then Printf.sprintf "%.0fK" (v /. 1000.0)
  else if Float.abs v >= 100.0 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2g" v

(* 8-level vertical ramps. The Unicode one uses the block elements
   U+2581..U+2588; the ASCII fallback approximates the same ordering. *)
let spark_glyphs_unicode =
  [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
     "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

let spark_glyphs_ascii = [| "."; ":"; "-"; "="; "+"; "*"; "#"; "@" |]

let sparkline ?(max_width = 64) ?(ascii = false) values =
  let vs = Array.of_seq (Seq.filter Float.is_finite (Array.to_seq values)) in
  let n = Array.length vs in
  if n = 0 then ""
  else begin
    let glyphs = if ascii then spark_glyphs_ascii else spark_glyphs_unicode in
    let w = min n (max 1 max_width) in
    (* When there are more points than cells, each cell is the mean of its
       bucket, so a long series keeps its overall shape. *)
    let cell i =
      let lo = i * n / w and hi = max (((i + 1) * n / w) - 1) (i * n / w) in
      let sum = ref 0.0 in
      for j = lo to hi do
        sum := !sum +. vs.(j)
      done;
      !sum /. float_of_int (hi - lo + 1)
    in
    let cells = Array.init w cell in
    let lo = Array.fold_left Float.min cells.(0) cells in
    let hi = Array.fold_left Float.max cells.(0) cells in
    let buf = Buffer.create (w * 3) in
    Array.iter
      (fun v ->
        let level =
          if hi <= lo then 3 (* constant series: a flat mid-height bar *)
          else
            min 7
              (int_of_float ((v -. lo) /. (hi -. lo) *. 8.0))
        in
        Buffer.add_string buf glyphs.(level))
      cells;
    Buffer.contents buf
  end

let render ?(width = 64) ?(height = 16) ?(x_label = "") ?(y_label = "") ~title
    seriess =
  let all_points =
    List.concat_map
      (fun s ->
        s.points
        @ List.concat_map (fun (x, lo, hi) -> [ (x, lo); (x, hi) ]) s.band)
      seriess
  in
  let xlo, xhi, ylo, yhi = bounds all_points in
  let xspan = if xhi > xlo then xhi -. xlo else 1.0 in
  let yspan = if yhi > ylo then yhi -. ylo else 1.0 in
  let col x = int_of_float (Float.round ((x -. xlo) /. xspan *. float_of_int (width - 1))) in
  let row y =
    height - 1
    - int_of_float (Float.round ((y -. ylo) /. yspan *. float_of_int (height - 1)))
  in
  let grid = Array.make_matrix height width ' ' in
  let plot_band s =
    List.iter
      (fun (x, lo, hi) ->
        let c = col x in
        if c >= 0 && c < width then
          for r = row hi to row lo do
            if r >= 0 && r < height && grid.(r).(c) = ' ' then grid.(r).(c) <- '.'
          done)
      s.band
  in
  let plot_line s =
    List.iter
      (fun (x, y) ->
        let c = col x and r = row y in
        if c >= 0 && c < width && r >= 0 && r < height then grid.(r).(c) <- s.glyph)
      s.points
  in
  List.iter plot_band seriess;
  List.iter plot_line seriess;
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (title ^ "\n");
  if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
  let ytick_w = 8 in
  for r = 0 to height - 1 do
    let tick =
      if r = 0 then fmt_tick yhi
      else if r = height - 1 then fmt_tick ylo
      else if r = height / 2 then fmt_tick ((yhi +. ylo) /. 2.0)
      else ""
    in
    Buffer.add_string buf (Printf.sprintf "%*s |" ytick_w tick);
    Buffer.add_string buf (String.init width (fun c -> grid.(r).(c)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (String.make ytick_w ' ' ^ " +" ^ String.make width '-' ^ "\n");
  let xlo_s = fmt_tick xlo and xhi_s = fmt_tick xhi in
  let gap = max 1 (width - String.length xlo_s - String.length xhi_s) in
  Buffer.add_string buf
    (String.make (ytick_w + 2) ' ' ^ xlo_s ^ String.make gap ' ' ^ xhi_s ^ "\n");
  if x_label <> "" then
    Buffer.add_string buf (String.make (ytick_w + 2) ' ' ^ x_label ^ "\n");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  %c = %s%s\n" s.glyph s.label
           (if s.band <> [] then " (band: min..max shown as '.')" else "")))
    seriess;
  Buffer.contents buf
