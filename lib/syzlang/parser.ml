exception Parse_error of string

type state = { src : string; mutable pos : int; line : int }

let error st fmt =
  Printf.ksprintf
    (fun msg ->
      raise
        (Parse_error
           (Printf.sprintf "line %d, char %d: %s" st.line st.pos msg)))
    fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while (match peek st with Some (' ' | '\t') -> true | _ -> false) do
    advance st
  done

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> error st "expected '%c', found '%c'" c c'
  | None -> error st "expected '%c', found end of line" c

let eat_string st s =
  skip_ws st;
  let n = String.length s in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = s then begin
    st.pos <- st.pos + n;
    true
  end
  else false

let is_digit c = c >= '0' && c <= '9'

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c
  || c = '_' || c = '$'

let parse_ident st =
  skip_ws st;
  let start = st.pos in
  while (match peek st with Some c when is_ident_char c -> true | _ -> false) do
    advance st
  done;
  if st.pos = start then error st "expected identifier";
  String.sub st.src start (st.pos - start)

let parse_int st =
  skip_ws st;
  let start = st.pos in
  if peek st = Some '-' then advance st;
  if eat_string st "0x" then begin
    let hstart = st.pos in
    while
      match peek st with
      | Some c when is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
        -> true
      | _ -> false
    do
      advance st
    done;
    if st.pos = hstart then error st "expected hex digits";
    let neg = st.src.[start] = '-' in
    let v = int_of_string ("0x" ^ String.sub st.src hstart (st.pos - hstart)) in
    if neg then -v else v
  end
  else begin
    while (match peek st with Some c when is_digit c -> true | _ -> false) do
      advance st
    done;
    if st.pos = start || (st.pos = start + 1 && st.src.[start] = '-') then
      error st "expected integer";
    int_of_string (String.sub st.src start (st.pos - start))
  end

let parse_quoted st =
  skip_ws st;
  (match peek st with
  | Some '"' -> advance st
  | _ -> error st "expected string literal");
  let buf = Buffer.create 8 in
  let rec go () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (* The printer emits OCaml [%S] escapes: backslash, double quote,
         \n \t \r \b, and \ddd (3 decimal digits) for the remaining
         non-printables. *)
      (match peek st with
      | Some ('0' .. '9') ->
        let digit () =
          match peek st with
          | Some ('0' .. '9' as c) -> advance st; Char.code c - Char.code '0'
          | Some _ | None -> error st "expected 3-digit decimal escape"
        in
        (* explicit sequencing: OCaml evaluates operands right-to-left *)
        let d1 = digit () in
        let d2 = digit () in
        let d3 = digit () in
        let code = (100 * d1) + (10 * d2) + d3 in
        if code > 255 then error st "decimal escape out of range";
        Buffer.add_char buf (Char.chr code)
      | Some c ->
        advance st;
        Buffer.add_char buf
          (match c with
          | 'n' -> '\n'
          | 't' -> '\t'
          | 'r' -> '\r'
          | 'b' -> '\b'
          | c -> c)
      | None -> error st "unterminated escape");
      go ()
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
    | None -> error st "unterminated string literal"
  in
  go ();
  Buffer.contents buf

let rec parse_value st (ty : Ty.t) : Value.t =
  skip_ws st;
  match ty with
  | Ty.Const _ ->
    if not (eat_string st "const:") then error st "expected const:N";
    Value.Vconst (parse_int st)
  | Ty.Int _ -> Value.Vint (parse_int st)
  | Ty.Flags _ -> Value.Vflags (parse_int st)
  | Ty.Enum _ ->
    if not (eat_string st "e:") then error st "expected e:N";
    Value.Venum (parse_int st)
  | Ty.Len _ ->
    if not (eat_string st "len:") then error st "expected len:N";
    Value.Vlen (parse_int st)
  | Ty.Buffer _ ->
    if not (eat_string st "buf") then error st "expected buf(len, seed)";
    expect st '(';
    let len = parse_int st in
    expect st ',';
    let seed = parse_int st in
    expect st ')';
    Value.Vbuf { len; seed }
  | Ty.Str _ -> Value.Vstr (parse_quoted st)
  | Ty.Ptr inner ->
    if eat_string st "nil" then Value.Vptr None
    else begin
      expect st '&';
      Value.Vptr (Some (parse_value st inner))
    end
  | Ty.Struct fields ->
    expect st '{';
    let rec fields_loop acc = function
      | [] -> List.rev acc
      | [ f ] -> List.rev (parse_value st f.Ty.fty :: acc)
      | f :: rest ->
        let v = parse_value st f.Ty.fty in
        expect st ',';
        fields_loop (v :: acc) rest
    in
    let vs = fields_loop [] fields in
    expect st '}';
    Value.Vstruct vs
  | Ty.Resource _ ->
    if eat_string st "bogus" then Value.Vres (-1)
    else begin
      skip_ws st;
      (match peek st with
      | Some 'r' -> advance st
      | _ -> error st "expected rN or bogus");
      Value.Vres (parse_int st)
    end

let parse_line db line_no line : Prog.call =
  let st = { src = line; pos = 0; line = line_no } in
  (* Optional "rN = " producer prefix: look ahead for '='. *)
  let saved = st.pos in
  (match peek st with
  | Some 'r' ->
    advance st;
    if (match peek st with Some c when is_digit c -> true | _ -> false) then begin
      let _ = parse_int st in
      skip_ws st;
      if not (eat_string st "=") then st.pos <- saved
    end
    else st.pos <- saved
  | _ -> ());
  let name = parse_ident st in
  let spec =
    match Spec.find db name with
    | Some s -> s
    | None -> error st "unknown syscall %s" name
  in
  expect st '(';
  let rec args_loop acc = function
    | [] -> List.rev acc
    | [ f ] -> List.rev (parse_value st f.Ty.fty :: acc)
    | f :: rest ->
      let v = parse_value st f.Ty.fty in
      expect st ',';
      args_loop (v :: acc) rest
  in
  let args = args_loop [] spec.Spec.args in
  expect st ')';
  skip_ws st;
  if st.pos <> String.length st.src then error st "trailing characters";
  { Prog.spec; args }

let program db src =
  let lines =
    String.split_on_char '\n' src
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  try
    Ok (Array.of_list (List.map (fun (no, l) -> parse_line db no l) lines))
  with Parse_error msg -> Error msg

let program_exn db src =
  match program db src with Ok p -> p | Error msg -> failwith msg
