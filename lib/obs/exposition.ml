type mtype = Counter | Gauge

type metric = {
  m_name : string;
  m_help : string;
  m_type : mtype;
  m_labels : (string * string) list;
  m_value : float;
}

let metric ?(help = "") ?(labels = []) m_type m_name m_value =
  { m_name; m_help = help; m_type; m_labels = labels; m_value }

let type_name = function Counter -> "counter" | Gauge -> "gauge"

let name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let name_char c = name_start c || (c >= '0' && c <= '9')

let valid_name s =
  String.length s > 0
  && name_start s.[0]
  && String.for_all name_char s

(* Label names additionally exclude ':' (reserved for recording rules). *)
let valid_label_name s =
  valid_name s && not (String.contains s ':')

let sanitize_name s =
  if s = "" then "_"
  else begin
    let b = Buffer.create (String.length s) in
    String.iteri
      (fun i c ->
        if i = 0 && not (name_start c) then begin
          Buffer.add_char b '_';
          if name_char c then Buffer.add_char b c
        end
        else Buffer.add_char b (if name_char c then c else '_'))
      s;
    Buffer.contents b
  end

(* Label values escape backslash, double-quote and newline; HELP text
   escapes backslash and newline (quotes pass through). *)
let escape_value buf s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s

let escape_help buf s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s

let value_string v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Json.num_to_string v

let render metrics =
  let buf = Buffer.create 4096 in
  let seen = Hashtbl.create 16 in
  let families = ref [] in
  List.iter
    (fun m ->
      match Hashtbl.find_opt seen m.m_name with
      | Some cell -> cell := m :: !cell
      | None ->
        let cell = ref [ m ] in
        Hashtbl.add seen m.m_name cell;
        families := (m.m_name, cell) :: !families)
    metrics;
  List.iter
    (fun (name, cell) ->
      match List.rev !cell with
      | [] -> ()
      | first :: _ as samples ->
        if not (valid_name name) then
          invalid_arg ("Exposition.render: invalid metric name " ^ name);
        if first.m_help <> "" then begin
          Buffer.add_string buf "# HELP ";
          Buffer.add_string buf name;
          Buffer.add_char buf ' ';
          escape_help buf first.m_help;
          Buffer.add_char buf '\n'
        end;
        Buffer.add_string buf "# TYPE ";
        Buffer.add_string buf name;
        Buffer.add_char buf ' ';
        Buffer.add_string buf (type_name first.m_type);
        Buffer.add_char buf '\n';
        List.iter
          (fun m ->
            Buffer.add_string buf name;
            (match m.m_labels with
            | [] -> ()
            | labels ->
              Buffer.add_char buf '{';
              List.iteri
                (fun i (k, v) ->
                  if not (valid_label_name k) then
                    invalid_arg ("Exposition.render: invalid label name " ^ k);
                  if i > 0 then Buffer.add_char buf ',';
                  Buffer.add_string buf k;
                  Buffer.add_string buf "=\"";
                  escape_value buf v;
                  Buffer.add_char buf '"')
                labels;
              Buffer.add_char buf '}');
            Buffer.add_char buf ' ';
            Buffer.add_string buf (value_string m.m_value);
            Buffer.add_char buf '\n')
          samples)
    (List.rev !families);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Validator                                                            *)
(* ------------------------------------------------------------------ *)

type stats = {
  x_families : int;
  x_samples : int;
  x_names : string list;
}

let split_lines s =
  String.split_on_char '\n' s

let parse_value s =
  match s with
  | "NaN" | "+Inf" | "-Inf" -> true
  | s -> (
    match float_of_string_opt s with Some _ -> true | None -> false)

(* Parse [name{k="v",...} value] — returns the family name, or an
   error description. *)
let parse_sample line =
  let n = String.length line in
  let rec name_end i = if i < n && name_char line.[i] then name_end (i + 1) else i in
  let e = name_end 0 in
  if e = 0 || not (name_start line.[0]) then Error "invalid metric name"
  else begin
    let name = String.sub line 0 e in
    let after_labels =
      if e < n && line.[e] = '{' then begin
        (* Scan the label block respecting escapes inside quoted values. *)
        let i = ref (e + 1) in
        let ok = ref true in
        let closed = ref false in
        while !ok && not !closed && !i < n do
          if line.[!i] = '}' then closed := true
          else begin
            (* label name *)
            let ls = !i in
            while !i < n && name_char line.[!i] do incr i done;
            if !i = ls || !i >= n || line.[!i] <> '=' then ok := false
            else if String.contains (String.sub line ls (!i - ls)) ':' then
              ok := false
            else begin
              incr i;
              if !i >= n || line.[!i] <> '"' then ok := false
              else begin
                incr i;
                let in_str = ref true in
                while !in_str && !i < n do
                  if line.[!i] = '\\' then i := !i + 2
                  else if line.[!i] = '"' then in_str := false
                  else incr i
                done;
                if !in_str || !i >= n then ok := false
                else begin
                  incr i;
                  if !i < n && line.[!i] = ',' then incr i
                  else if !i < n && line.[!i] <> '}' then ok := false
                end
              end
            end
          end
        done;
        if not !ok || not !closed then Error "malformed label block"
        else Ok (!i + 1)
      end
      else Ok e
    in
    match after_labels with
    | Error _ as e -> e
    | Ok i ->
      if i >= n || line.[i] <> ' ' then Error "expected space before value"
      else begin
        let rest = String.sub line (i + 1) (n - i - 1) in
        (* value, optionally followed by a timestamp *)
        match String.index_opt rest ' ' with
        | None -> if parse_value rest then Ok name else Error "unparseable value"
        | Some sp ->
          let v = String.sub rest 0 sp in
          let ts = String.sub rest (sp + 1) (String.length rest - sp - 1) in
          if not (parse_value v) then Error "unparseable value"
          else if float_of_string_opt ts = None then
            Error "unparseable timestamp"
          else Ok name
      end
  end

let validate payload =
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let names = ref [] in
  let samples = ref 0 in
  let err lineno msg line =
    Error (Printf.sprintf "exposition: line %d: %s: %S" lineno msg line)
  in
  let rec go lineno = function
    | [] -> Ok ()
    | [ "" ] -> Ok ()  (* trailing newline *)
    | line :: rest ->
      let result =
        if line = "" then Ok ()
        else if String.length line > 6 && String.sub line 0 7 = "# TYPE " then begin
          let body = String.sub line 7 (String.length line - 7) in
          match String.split_on_char ' ' body with
          | [ name; ty ] ->
            if not (valid_name name) then err lineno "invalid family name" line
            else if ty <> "counter" && ty <> "gauge" && ty <> "histogram"
                    && ty <> "summary" && ty <> "untyped" then
              err lineno "unknown metric type" line
            else if Hashtbl.mem typed name then
              err lineno "duplicate TYPE declaration" line
            else begin
              Hashtbl.add typed name ();
              names := name :: !names;
              Ok ()
            end
          | _ -> err lineno "malformed TYPE line" line
        end
        else if String.length line > 6 && String.sub line 0 7 = "# HELP " then begin
          let body = String.sub line 7 (String.length line - 7) in
          match String.index_opt body ' ' with
          | Some i when valid_name (String.sub body 0 i) -> Ok ()
          | _ ->
            if valid_name body then Ok ()  (* HELP with empty text *)
            else err lineno "malformed HELP line" line
        end
        else if String.length line >= 1 && line.[0] = '#' then Ok ()  (* comment *)
        else begin
          match parse_sample line with
          | Error msg -> err lineno msg line
          | Ok name ->
            (* A sample's family: the longest declared name prefix covers
               histogram/summary suffixes; for our counter/gauge output the
               name must itself be declared. *)
            if not (Hashtbl.mem typed name) then
              err lineno "sample precedes its TYPE declaration" line
            else begin
              incr samples;
              Ok ()
            end
        end
      in
      (match result with Ok () -> go (lineno + 1) rest | Error _ as e -> e)
  in
  match go 1 (split_lines payload) with
  | Error _ as e -> e
  | Ok () ->
    Ok
      {
        x_families = Hashtbl.length typed;
        x_samples = !samples;
        x_names = List.rev !names;
      }
