(** A campaign's tracer collection and Chrome [trace_event] exporter.

    One {!t} spans a whole run; components ask it for per-domain tracers
    keyed by pid ({!tracer} memoizes, so asking twice for the same pid
    returns the same tracer). When the collection is disabled every
    handout is {!Tracer.null} and recording costs one branch.

    Handing out tracers mutates the collection and must happen on the
    coordinating (main) domain — the campaign registers every shard and
    pool-worker tracer before the workers start. Recording into the
    handed-out tracers is then per-domain and unsynchronized by design.

    Pid conventions used by the campaign layer: pid 0 is the main/merge
    domain, pid [1+s] is campaign shard [s], pid [1001+i] is pool worker
    [i]. *)

type t

val create : ?capacity:int -> enabled:bool -> unit -> t
(** [capacity] is per-tracer ring capacity (see {!Tracer.create}). *)

val disabled : t
(** The shared never-recording collection; {!export} is still
    well-formed (an empty event array). *)

val enabled : t -> bool

val tracer : t -> pid:int -> name:string -> Tracer.t
(** The tracer for [pid], created (with [name]) on first request. *)

val tracers : t -> Tracer.t list
(** All handed-out tracers, in pid order. *)

val export : t -> Json.t
(** The whole collection as one Chrome [trace_event] JSON object
    ([{"traceEvents": [...], "displayTimeUnit": "ms"}]), loadable in
    [chrome://tracing] or Perfetto. Every lane is balanced and
    time-ordered (see {!Tracer.to_json_events}). *)

val export_string : t -> string

val write_file : t -> string -> unit
(** [export_string] to a file. *)
