type request = {
  rq_method : string;
  rq_path : string;
  rq_query : (string * string) list;
  rq_version : string;
  rq_headers : (string * string) list;
}

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let percent_decode s =
  let n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
      match (hex_val s.[!i + 1], hex_val s.[!i + 2]) with
      | Some h, Some l ->
        Buffer.add_char b (Char.chr ((h * 16) + l));
        i := !i + 2
      | _ -> Buffer.add_char b '%')
    | '+' -> Buffer.add_char b ' '
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun pair ->
           if pair = "" then None
           else
             match String.index_opt pair '=' with
             | None -> Some (percent_decode pair, "")
             | Some i ->
               Some
                 ( percent_decode (String.sub pair 0 i),
                   percent_decode
                     (String.sub pair (i + 1) (String.length pair - i - 1)) ))

let has_ctl s = String.exists (fun c -> Char.code c < 0x20 || c = '\x7f') s

let strip_cr line =
  let n = String.length line in
  if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1) else line

let parse_request raw =
  match String.split_on_char '\n' raw with
  | [] -> Error "empty request"
  | req_line :: rest -> (
    let req_line = strip_cr req_line in
    match String.split_on_char ' ' req_line with
    | [ meth; target; version ] ->
      if meth = "" || not (String.for_all (fun c -> c >= 'A' && c <= 'Z') meth)
      then Error "malformed method"
      else if target = "" || target.[0] <> '/' || has_ctl target then
        Error "malformed request target"
      else if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
        Error "unsupported HTTP version"
      else begin
        let path, query =
          match String.index_opt target '?' with
          | None -> (target, [])
          | Some i ->
            ( String.sub target 0 i,
              parse_query
                (String.sub target (i + 1) (String.length target - i - 1)) )
        in
        let rec headers acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest -> (
            let line = strip_cr line in
            if line = "" then Ok (List.rev acc)  (* end of head *)
            else
              match String.index_opt line ':' with
              | None | Some 0 -> Error "header line without a name:value colon"
              | Some i ->
                let name = String.lowercase_ascii (String.sub line 0 i) in
                let value =
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1))
                in
                if has_ctl name || has_ctl value || String.contains name ' '
                then Error "control bytes in header"
                else headers ((name, value) :: acc) rest)
        in
        match headers [] rest with
        | Error _ as e -> e
        | Ok hs ->
          Ok
            {
              rq_method = meth;
              rq_path = percent_decode path;
              rq_query = query;
              rq_version = version;
              rq_headers = hs;
            }
      end
    | _ -> Error "malformed request line")

let header rq name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name rq.rq_headers

let query_int rq name =
  Option.bind (List.assoc_opt name rq.rq_query) int_of_string_opt

let read_head ?(max_bytes = 8192) fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec terminator () =
    (* Only the tail can complete a terminator that spans reads; a full
       substring scan per chunk keeps this simple at these sizes. *)
    let s = Buffer.contents buf in
    let n = String.length s in
    let rec find i =
      if i + 3 >= n then None
      else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
              && s.[i + 3] = '\n' then Some i
      else find (i + 1)
    in
    find 0
  and loop () =
    match terminator () with
    | Some i -> Ok (String.sub (Buffer.contents buf) 0 i)
    | None ->
      if Buffer.length buf >= max_bytes then Error "request head too large"
      else begin
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> Error "connection closed before request head completed"
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          loop ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
          Error "read timed out"
        | exception Unix.Unix_error (e, _, _) ->
          Error ("read failed: " ^ Unix.error_message e)
      end
  in
  loop ()

let response ?(status = (200, "OK"))
    ?(content_type = "text/plain; charset=utf-8") ?(extra_headers = []) body =
  let code, reason = status in
  let b = Buffer.create (String.length body + 256) in
  Buffer.add_string b (Printf.sprintf "HTTP/1.1 %d %s\r\n" code reason);
  Buffer.add_string b (Printf.sprintf "Content-Type: %s\r\n" content_type);
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" k v))
    extra_headers;
  Buffer.add_string b "Connection: close\r\n\r\n";
  Buffer.add_string b body;
  Buffer.contents b

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < n then begin
      let w = Unix.write fd b off (n - off) in
      go (off + w)
    end
  in
  go 0

let get ?(timeout_s = 5.0) ~host ~port path =
  match Unix.getaddrinfo host (string_of_int port)
          [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
  | [] -> Error (Printf.sprintf "no address for %s:%d" host port)
  | ai :: _ -> (
    let fd = Unix.socket ai.Unix.ai_family ai.Unix.ai_socktype 0 in
    let finally () = try Unix.close fd with Unix.Unix_error _ -> () in
    Fun.protect ~finally (fun () ->
        try
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
          Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s;
          Unix.connect fd ai.Unix.ai_addr;
          write_all fd
            (Printf.sprintf "GET %s HTTP/1.1\r\nHost: %s:%d\r\n\r\n" path host
               port);
          (* Read the whole response; Connection: close bounds it. *)
          let buf = Buffer.create 1024 in
          let chunk = Bytes.create 4096 in
          let rec drain () =
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
          in
          drain ();
          let raw = Buffer.contents buf in
          let split =
            let n = String.length raw in
            let rec find i =
              if i + 3 >= n then None
              else if raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
                      && raw.[i + 3] = '\n' then Some i
              else find (i + 1)
            in
            find 0
          in
          match split with
          | None -> Error "malformed response: no header terminator"
          | Some i -> (
            let head = String.sub raw 0 i in
            let body = String.sub raw (i + 4) (String.length raw - i - 4) in
            match String.split_on_char '\n' head with
            | status_line :: header_lines -> (
              let status_line = strip_cr status_line in
              match String.split_on_char ' ' status_line with
              | _http :: code :: _ -> (
                match int_of_string_opt code with
                | None -> Error ("malformed status line: " ^ status_line)
                | Some code ->
                  let headers =
                    List.filter_map
                      (fun l ->
                        let l = strip_cr l in
                        match String.index_opt l ':' with
                        | None -> None
                        | Some i ->
                          Some
                            ( String.lowercase_ascii (String.sub l 0 i),
                              String.trim
                                (String.sub l (i + 1)
                                   (String.length l - i - 1)) ))
                      header_lines
                  in
                  Ok (code, headers, body))
              | _ -> Error ("malformed status line: " ^ status_line))
            | [] -> Error "empty response head")
        with
        | Unix.Unix_error (e, fn, _) ->
          Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))))
