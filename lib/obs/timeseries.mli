(** Fixed-interval campaign time-series with JSONL/CSV export.

    A sampler driven by the campaign's {e virtual} clock: the campaign
    appends one row per snapshot-grid point (and, in parallel runs, only
    at barriers, from the already shard-merged global state), so a series
    contains no wall-clock and no scheduling — two runs with the same
    [(seed, jobs)] produce bit-for-bit identical {!to_jsonl} output.
    That determinism contract is pinned by [test_parallel].

    Rows are [(time, (name, value) list)]; the column set is the union of
    names in first-seen order. {!to_jsonl} writes one JSON object per row
    with the fields in sample order (and round-trips through
    {!of_jsonl} byte-exactly); {!to_csv} writes a rectangular table with
    empty cells for absent columns. *)

type t

val create : unit -> t

val sample : t -> time:float -> (string * float) list -> unit
(** Append one row. [time] is virtual seconds since campaign start;
    callers must sample in non-decreasing time order. *)

val length : t -> int

val columns : t -> string list
(** Without the implicit time column; first-seen order. *)

val rows : t -> (float * (string * float) list) list
(** Chronological. *)

val column : t -> string -> (float * float) list
(** [(time, value)] for every row that carries the column. *)

val last : t -> string -> float option

val to_jsonl : t -> string
(** One compact JSON object per row, e.g.
    [{"t":1200,"blocks":411,"edges":903}]. *)

val to_csv : t -> string
(** Header [t,<col>,...] then one row per sample; absent values are
    empty cells. *)

val of_jsonl : string -> (t, string) result
(** Parse {!to_jsonl} output (tolerates a trailing newline). Every line
    must be an object with a numeric ["t"] field; other numeric fields
    become columns in object order. *)
