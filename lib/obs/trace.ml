type t = {
  enabled : bool;
  capacity : int option;
  mutable tracers : (int * Tracer.t) list;  (* newest first; pid-keyed *)
}

let create ?capacity ~enabled () = { enabled; capacity; tracers = [] }

let disabled = create ~enabled:false ()

let enabled t = t.enabled

let tracer t ~pid ~name =
  if not t.enabled then Tracer.null
  else
    match List.assoc_opt pid t.tracers with
    | Some tr -> tr
    | None ->
      let tr = Tracer.create ?capacity:t.capacity ~pid ~name () in
      t.tracers <- (pid, tr) :: t.tracers;
      tr

let tracers t =
  List.sort (fun (a, _) (b, _) -> compare a b) t.tracers |> List.map snd

let export t =
  let events = List.concat_map Tracer.to_json_events (tracers t) in
  Json.Obj
    [ ("traceEvents", Json.Arr events); ("displayTimeUnit", Json.Str "ms") ]

let export_string t = Json.to_string (export t)

let write_file t path = Io.write_atomic path (export_string t)
