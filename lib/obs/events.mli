(** Leveled structured event log: a bounded in-memory ring plus an
    optional JSONL sink.

    One log serves a whole process. Producers call {!log} with a [kind]
    (a dotted event name like ["scheduler.slice"]) and structured
    fields; each accepted event gets a monotonically increasing
    sequence number, so consumers (the [/events?since=N] endpoint, the
    JSONL file) can resume from a cursor without missing or duplicating
    events. The ring keeps the most recent [capacity] events; older
    ones are evicted and counted in {!dropped} — the sink, when
    configured, still saw them.

    Appends and reads are mutex-guarded: events fire at slice/barrier
    granularity (not per test execution), so a lock here is off the
    campaign hot path by construction, and it makes the log safe to
    read from the exporter's HTTP thread while the scheduler appends.

    A disabled log ({!null}) short-circuits {!log} on one branch, so
    instrumentation can stay unconditionally wired. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> level option

type event = {
  ev_seq : int;  (** unique, monotonically increasing from 1 *)
  ev_wall : float;  (** [Unix.gettimeofday] at append *)
  ev_level : level;
  ev_kind : string;
  ev_fields : (string * Json.t) list;
}

type t

val create :
  ?capacity:int -> ?min_level:level -> ?sink:(string -> unit) -> unit -> t
(** [capacity] (default 1024) bounds the ring; events below [min_level]
    (default [Debug], i.e. keep everything) are discarded without a
    sequence number. [sink], when given, receives each accepted event
    as one serialized JSON line (no trailing newline) under the log's
    mutex — keep it cheap and non-reentrant. Raises [Invalid_argument]
    when [capacity < 1]. *)

val null : t
(** The shared disabled log: {!log} is a no-op, {!since} is empty. *)

val enabled : t -> bool

val log : t -> ?level:level -> kind:string -> (string * Json.t) list -> unit
(** Append one event (default level [Info]). *)

val seq : t -> int
(** Sequence number of the newest event (0 when none yet). *)

val dropped : t -> int
(** Events evicted from the ring so far. *)

val since : ?min_level:level -> t -> int -> event list
(** [since t n] is every retained event with [ev_seq > n], oldest
    first, optionally filtered to [min_level] and above. A cursor older
    than the ring's tail silently skips the evicted gap — check
    {!dropped} to detect it. *)

val event_json : event -> Json.t
(** [{"seq":..,"wall":..,"level":..,"kind":..,"fields":{..}}] — the
    shape both the JSONL sink and [/events] serve. *)
