type span_stat = {
  span : string;
  spans : int;
  total_us : float;
  max_us : float;
}

type counter_stat = { counter : string; samples : int; last : float }

type summary = {
  events : int;
  pids : int list;
  span_stats : span_stat list;
  counter_stats : counter_stat list;
  instants : (string * int) list;
  dropped : (int * int) list;
}

let total_dropped s = List.fold_left (fun acc (_, d) -> acc + d) 0 s.dropped

type lane = {
  mutable last_ts : float;
  mutable stack : (string * float) list;  (* open spans: (name, begin ts) *)
}

let validate json =
  match Json.member "traceEvents" json with
  | None -> Error "trace: no \"traceEvents\" array at top level"
  | Some events_json -> (
    match Json.arr_opt events_json with
    | None -> Error "trace: \"traceEvents\" is not an array"
    | Some events -> (
      let lanes : (int * int, lane) Hashtbl.t = Hashtbl.create 8 in
      let span_acc : (string, int * float * float) Hashtbl.t =
        Hashtbl.create 16
      in
      let counter_acc : (string, int * float) Hashtbl.t = Hashtbl.create 16 in
      let instant_acc : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let dropped_acc : (int, int) Hashtbl.t = Hashtbl.create 4 in
      let count = ref 0 in
      let check_event i ev =
        let get field conv what =
          match Option.bind (Json.member field ev) conv with
          | Some v -> Ok v
          | None ->
            Error (Printf.sprintf "trace: event %d: missing %s %S" i what field)
        in
        Result.bind (get "name" Json.str_opt "string") @@ fun name ->
        Result.bind (get "ph" Json.str_opt "string") @@ fun ph ->
        Result.bind (get "pid" Json.num_opt "number") @@ fun pid ->
        Result.bind (get "tid" Json.num_opt "number") @@ fun tid ->
        if String.equal ph "M" then begin
          (* Metadata: no timestamp contract. [trace_dropped] carries the
             emitting tracer's ring-eviction count (satellite of the
             truncation-warning machinery in [stats]). *)
          if String.equal name "trace_dropped" then begin
            let d =
              match
                Option.bind (Json.member "args" ev) (Json.member "dropped")
              with
              | Some (Json.Num v) -> int_of_float v
              | Some _ | None -> 0
            in
            let p = int_of_float pid in
            Hashtbl.replace dropped_acc p
              (d + Option.value ~default:0 (Hashtbl.find_opt dropped_acc p))
          end;
          Ok ()
        end
        else begin
          Result.bind (get "ts" Json.num_opt "number") @@ fun ts ->
          incr count;
          let key = (int_of_float pid, int_of_float tid) in
          let lane =
            match Hashtbl.find_opt lanes key with
            | Some l -> l
            | None ->
              let l = { last_ts = neg_infinity; stack = [] } in
              Hashtbl.add lanes key l;
              l
          in
          if ts < lane.last_ts then
            Error
              (Printf.sprintf
                 "trace: event %d (%s): timestamp %g < %g, lane (%d,%d) not \
                  monotone"
                 i name ts lane.last_ts (fst key) (snd key))
          else begin
            lane.last_ts <- ts;
            match ph with
            | "B" ->
              lane.stack <- (name, ts) :: lane.stack;
              Ok ()
            | "E" -> (
              match lane.stack with
              | (bname, bts) :: rest when String.equal bname name ->
                lane.stack <- rest;
                let d = ts -. bts in
                let n, total, mx =
                  Option.value ~default:(0, 0.0, 0.0)
                    (Hashtbl.find_opt span_acc name)
                in
                Hashtbl.replace span_acc name
                  (n + 1, total +. d, Float.max mx d);
                Ok ()
              | (bname, _) :: _ ->
                Error
                  (Printf.sprintf
                     "trace: event %d: E %S closes open span %S on lane (%d,%d)"
                     i name bname (fst key) (snd key))
              | [] ->
                Error
                  (Printf.sprintf
                     "trace: event %d: E %S with no open span on lane (%d,%d)"
                     i name (fst key) (snd key)))
            | "I" ->
              Hashtbl.replace instant_acc name
                (1 + Option.value ~default:0 (Hashtbl.find_opt instant_acc name));
              Ok ()
            | "C" ->
              let v =
                match
                  Option.bind (Json.member "args" ev) (Json.member "value")
                with
                | Some (Json.Num v) -> v
                | Some _ | None -> 0.0
              in
              let n, _ =
                Option.value ~default:(0, 0.0) (Hashtbl.find_opt counter_acc name)
              in
              Hashtbl.replace counter_acc name (n + 1, v);
              Ok ()
            | ph ->
              Error (Printf.sprintf "trace: event %d: unknown phase %S" i ph)
          end
        end
      in
      let rec go i = function
        | [] -> Ok ()
        | ev :: rest -> (
          match check_event i ev with
          | Ok () -> go (i + 1) rest
          | Error _ as e -> e)
      in
      match go 0 events with
      | Error e -> Error e
      | Ok () ->
        let unclosed = ref None in
        Hashtbl.iter
          (fun (pid, tid) lane ->
            match lane.stack with
            | (name, _) :: _ when !unclosed = None ->
              unclosed := Some (pid, tid, name)
            | _ -> ())
          lanes;
        (match !unclosed with
        | Some (pid, tid, name) ->
          Error
            (Printf.sprintf "trace: unclosed span %S on lane (%d,%d)" name pid
               tid)
        | None ->
          let span_stats =
            Hashtbl.fold
              (fun span (spans, total_us, max_us) acc ->
                { span; spans; total_us; max_us } :: acc)
              span_acc []
            |> List.sort (fun a b ->
                   match compare b.total_us a.total_us with
                   | 0 -> compare a.span b.span
                   | c -> c)
          in
          let counter_stats =
            Hashtbl.fold
              (fun counter (samples, last) acc ->
                { counter; samples; last } :: acc)
              counter_acc []
            |> List.sort (fun a b -> compare a.counter b.counter)
          in
          let instants =
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) instant_acc []
            |> List.sort compare
          in
          let pids =
            Hashtbl.fold (fun (pid, _) _ acc -> pid :: acc) lanes []
            |> List.sort_uniq compare
          in
          let dropped =
            Hashtbl.fold (fun pid d acc -> (pid, d) :: acc) dropped_acc []
            |> List.sort compare
          in
          Ok { events = !count; pids; span_stats; counter_stats; instants;
               dropped })))

let has_span summary name =
  List.exists (fun s -> String.equal s.span name) summary.span_stats

let has_counter summary name =
  List.exists (fun c -> String.equal c.counter name) summary.counter_stats
