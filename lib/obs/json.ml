type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* Integral values print without a fraction ("12", not "12."), everything
   else as the shortest of %.15g / %.17g that parses back to the same
   float — 15 digits suffice for most values and stay readable, 17 is
   always exact for a binary64. *)
let num_to_string f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else begin
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (num_to_string f)
  | Str s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | Arr items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf k;
        Buffer.add_string buf "\":";
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the raw byte string.                  *)
(* ------------------------------------------------------------------ *)

exception Fail of string * int

type st = { s : string; mutable pos : int }

let fail st msg = raise (Fail (msg, st.pos))

let eof st = st.pos >= String.length st.s

let peek st = st.s.[st.pos]

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  while
    (not (eof st))
    && (match peek st with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    advance st
  done

let expect_lit st lit v =
  let n = String.length lit in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = lit then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected %s" lit)

let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  if st.pos + 4 > String.length st.s then fail st "truncated \\u escape";
  let v = ref 0 in
  for _ = 1 to 4 do
    let c = peek st in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail st "bad hex digit in \\u escape"
    in
    v := (!v * 16) + d;
    advance st
  done;
  !v

let parse_string st =
  (* opening quote already checked by the caller *)
  advance st;
  let buf = Buffer.create 16 in
  let rec go () =
    if eof st then fail st "unterminated string";
    match peek st with
    | '"' -> advance st
    | '\\' ->
      advance st;
      if eof st then fail st "unterminated escape";
      (match peek st with
      | '"' -> Buffer.add_char buf '"'; advance st
      | '\\' -> Buffer.add_char buf '\\'; advance st
      | '/' -> Buffer.add_char buf '/'; advance st
      | 'b' -> Buffer.add_char buf '\b'; advance st
      | 'f' -> Buffer.add_char buf '\012'; advance st
      | 'n' -> Buffer.add_char buf '\n'; advance st
      | 'r' -> Buffer.add_char buf '\r'; advance st
      | 't' -> Buffer.add_char buf '\t'; advance st
      | 'u' ->
        advance st;
        let cp = hex4 st in
        let cp =
          (* high surrogate: look for the paired \uXXXX low surrogate *)
          if
            cp >= 0xD800 && cp <= 0xDBFF
            && st.pos + 1 < String.length st.s
            && peek st = '\\'
            && st.s.[st.pos + 1] = 'u'
          then begin
            st.pos <- st.pos + 2;
            let lo = hex4 st in
            if lo >= 0xDC00 && lo <= 0xDFFF then
              0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
            else fail st "unpaired surrogate"
          end
          else cp
        in
        add_utf8 buf cp
      | _ -> fail st "unknown escape");
      go ()
    | c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (not (eof st)) && is_num_char (peek st) do
    advance st
  done;
  let lit = String.sub st.s start (st.pos - start) in
  match float_of_string_opt lit with
  | Some f -> Num f
  | None -> fail st (Printf.sprintf "bad number %S" lit)

let rec parse_value st =
  skip_ws st;
  if eof st then fail st "unexpected end of input";
  match peek st with
  | '{' -> parse_obj st
  | '[' -> parse_arr st
  | '"' -> Str (parse_string st)
  | 't' -> expect_lit st "true" (Bool true)
  | 'f' -> expect_lit st "false" (Bool false)
  | 'n' -> expect_lit st "null" Null
  | '-' | '0' .. '9' -> parse_number st
  | c -> fail st (Printf.sprintf "unexpected character %C" c)

and parse_arr st =
  advance st;
  skip_ws st;
  if (not (eof st)) && peek st = ']' then begin
    advance st;
    Arr []
  end
  else begin
    let rec items acc =
      let v = parse_value st in
      skip_ws st;
      if eof st then fail st "unterminated array";
      match peek st with
      | ',' -> advance st; items (v :: acc)
      | ']' -> advance st; Arr (List.rev (v :: acc))
      | _ -> fail st "expected ',' or ']'"
    in
    items []
  end

and parse_obj st =
  advance st;
  skip_ws st;
  if (not (eof st)) && peek st = '}' then begin
    advance st;
    Obj []
  end
  else begin
    let field () =
      skip_ws st;
      if eof st || peek st <> '"' then fail st "expected field name";
      let k = parse_string st in
      skip_ws st;
      if eof st || peek st <> ':' then fail st "expected ':'";
      advance st;
      let v = parse_value st in
      (k, v)
    in
    let rec fields acc =
      let kv = field () in
      skip_ws st;
      if eof st then fail st "unterminated object";
      match peek st with
      | ',' -> advance st; fields (kv :: acc)
      | '}' -> advance st; Obj (List.rev (kv :: acc))
      | _ -> fail st "expected ',' or '}'"
    in
    fields []
  end

let of_string s =
  let st = { s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if not (eof st) then fail st "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Fail (msg, pos) ->
    Error (Printf.sprintf "json: %s at byte %d" msg pos)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let num_opt = function Num f -> Some f | _ -> None

let str_opt = function Str s -> Some s | _ -> None

let arr_opt = function Arr items -> Some items | _ -> None

module Decode = struct
  exception Error of string

  let error fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

  let field name j =
    match member name j with
    | Some v -> v
    | None -> error "missing field %S" name

  let num_field name j =
    match field name j with
    | Num f -> f
    | _ -> error "field %S: expected number" name

  let int_field name j =
    let f = num_field name j in
    if Float.is_integer f && Float.abs f <= 2.0 ** 53.0 then int_of_float f
    else error "field %S: expected integer, got %s" name (num_to_string f)

  let str_field name j =
    match field name j with
    | Str s -> s
    | _ -> error "field %S: expected string" name

  let bool_field name j =
    match field name j with
    | Bool b -> b
    | _ -> error "field %S: expected bool" name

  let arr_field name j =
    match field name j with
    | Arr items -> items
    | _ -> error "field %S: expected array" name

  let obj_field name j =
    match field name j with
    | Obj _ as o -> o
    | _ -> error "field %S: expected object" name

  (* Int64 values (RNG states) exceed the float-exact integer range, so
     they travel as 16-digit hex strings rather than [Num]. *)
  let int64_to_json v = Str (Printf.sprintf "%016Lx" v)

  let int64_field name j =
    let s = str_field name j in
    match Int64.of_string_opt ("0x" ^ s) with
    | Some v when String.length s = 16 -> v
    | _ -> error "field %S: expected 16-digit hex int64, got %S" name s

  let run f = match f () with v -> Ok v | exception Error msg -> Error msg
end

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool a, Bool b -> a = b
  | Num a, Num b -> Float.equal a b
  | Str a, Str b -> String.equal a b
  | Arr a, Arr b -> List.length a = List.length b && List.for_all2 equal a b
  | Obj a, Obj b ->
    List.length a = List.length b
    && List.for_all2
         (fun (ka, va) (kb, vb) -> String.equal ka kb && equal va vb)
         a b
  | (Null | Bool _ | Num _ | Str _ | Arr _ | Obj _), _ -> false
