type t = {
  cols_seen : (string, unit) Hashtbl.t;
  mutable cols_rev : string list;  (* first-seen order, reversed *)
  mutable rows_rev : (float * (string * float) list) list;
  mutable n : int;
}

let create () =
  { cols_seen = Hashtbl.create 16; cols_rev = []; rows_rev = []; n = 0 }

let sample t ~time fields =
  List.iter
    (fun (name, _) ->
      if not (Hashtbl.mem t.cols_seen name) then begin
        Hashtbl.add t.cols_seen name ();
        t.cols_rev <- name :: t.cols_rev
      end)
    fields;
  t.rows_rev <- (time, fields) :: t.rows_rev;
  t.n <- t.n + 1

let length t = t.n

let columns t = List.rev t.cols_rev

let rows t = List.rev t.rows_rev

let column t name =
  List.filter_map
    (fun (time, fields) ->
      match List.assoc_opt name fields with
      | Some v -> Some (time, v)
      | None -> None)
    (rows t)

let last t name =
  let rec go = function
    | [] -> None
    | (_, fields) :: rest -> (
      match List.assoc_opt name fields with Some v -> Some v | None -> go rest)
  in
  go t.rows_rev

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (time, fields) ->
      let obj =
        Json.Obj
          (("t", Json.Num time)
          :: List.map (fun (k, v) -> (k, Json.Num v)) fields)
      in
      Json.to_buffer buf obj;
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let to_csv t =
  let cols = columns t in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," ("t" :: cols));
  Buffer.add_char buf '\n';
  List.iter
    (fun (time, fields) ->
      Buffer.add_string buf (Json.num_to_string time);
      List.iter
        (fun col ->
          Buffer.add_char buf ',';
          match List.assoc_opt col fields with
          | Some v -> Buffer.add_string buf (Json.num_to_string v)
          | None -> ())
        cols;
      Buffer.add_char buf '\n')
    (rows t);
  Buffer.contents buf

let of_jsonl text =
  let t = create () in
  let lines = String.split_on_char '\n' text in
  let rec go i = function
    | [] -> Ok t
    | "" :: rest -> go (i + 1) rest
    | line :: rest -> (
      match Json.of_string line with
      | Error e -> Error (Printf.sprintf "line %d: %s" i e)
      | Ok (Json.Obj fields) -> (
        match List.assoc_opt "t" fields with
        | Some (Json.Num time) ->
          let cols =
            List.filter_map
              (fun (k, v) ->
                if String.equal k "t" then None
                else
                  match v with Json.Num f -> Some (k, f) | _ -> None)
              fields
          in
          sample t ~time cols;
          go (i + 1) rest
        | Some _ | None ->
          Error (Printf.sprintf "line %d: missing numeric \"t\" field" i))
      | Ok _ -> Error (Printf.sprintf "line %d: expected an object" i))
  in
  go 1 lines
