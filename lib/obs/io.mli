(** Crash-safe file writes.

    Every artifact the reproduction persists — traces, time-series, campaign
    snapshots, bench results — must never be observable half-written: a
    campaign killed mid-snapshot has to leave the previous snapshot intact,
    or resume would load a torn file. All writers therefore go through
    [write_atomic]: the data lands in a temporary file in the destination
    directory (same filesystem, so the final step is a plain [rename]) and is
    moved over the target only once fully flushed. Any exception mid-write
    removes the temporary and leaves the target untouched.

    [inject] is a fault-injection hook run after the temporary is created
    and before anything is written: raising from it exercises exactly the
    mid-write crash path (temporary removed, target untouched) without
    the caller needing filesystem tricks. [sp_obs] sits below [sp_util],
    so the hook is a plain closure — callers arm it with
    [Sp_util.Faults.fire]. *)

val write_atomic : ?inject:(unit -> unit) -> string -> string -> unit
(** [write_atomic path data] atomically replaces [path] with [data]. *)

val write_atomic_with : ?inject:(unit -> unit) -> string -> (out_channel -> unit) -> unit
(** [write_atomic_with path writer] like [write_atomic], but [writer] streams
    into the temporary file's channel. The channel is closed (and the
    temporary removed on failure) even if [writer] raises. *)

val read_file : string -> string
(** [read_file path] reads the whole file, closing the channel on error. *)
