type payload = {
  p_metrics : Exposition.metric list;
  p_health : Json.t;
  p_tenants : Json.t;
}

(* What the serving thread reads: the payload prerendered to response
   bodies. Immutable — publish swaps the whole record. *)
type rendered = { r_metrics : string; r_health : string; r_tenants : string }

type t = {
  events : Events.t;
  current : rendered Atomic.t;
  mutable listener : Unix.file_descr option;
  mutable thread : Thread.t option;
  mutable bound_port : int option;
}

let empty_rendered =
  { r_metrics = ""; r_health = "{}"; r_tenants = "[]" }

let create ?(events = Events.null) () =
  {
    events;
    current = Atomic.make empty_rendered;
    listener = None;
    thread = None;
    bound_port = None;
  }

let publish t payload =
  Atomic.set t.current
    {
      r_metrics = Exposition.render payload.p_metrics;
      r_health = Json.to_string payload.p_health;
      r_tenants = Json.to_string payload.p_tenants;
    }

let port t = t.bound_port

let json_response ?status body =
  Http.response ?status ~content_type:"application/json" body

let handle_events t rq =
  let cursor = Option.value ~default:0 (Http.query_int rq "since") in
  let min_level =
    match List.assoc_opt "level" rq.Http.rq_query with
    | Some l -> Events.level_of_string l
    | None -> Some Events.Debug
  in
  match min_level with
  | None -> json_response ~status:(400, "Bad Request") "{\"error\":\"bad level\"}"
  | Some min_level ->
    let evs = Events.since ~min_level t.events cursor in
    let next =
      match List.rev evs with
      | last :: _ -> last.Events.ev_seq
      | [] -> max cursor (Events.seq t.events)
    in
    json_response
      (Json.to_string
         (Json.Obj
            [ ("events", Json.Arr (List.map Events.event_json evs));
              ("next", Json.Num (float_of_int next));
              ( "dropped",
                Json.Num (float_of_int (Events.dropped t.events)) )
            ]))

let handle t raw =
  match Http.parse_request raw with
  | Error msg ->
    json_response ~status:(400, "Bad Request")
      (Json.to_string (Json.Obj [ ("error", Json.Str msg) ]))
  | Ok rq ->
    if rq.Http.rq_method <> "GET" && rq.Http.rq_method <> "HEAD" then
      json_response ~status:(405, "Method Not Allowed")
        "{\"error\":\"method not allowed\"}"
    else begin
      let r = Atomic.get t.current in
      match rq.Http.rq_path with
      | "/metrics" ->
        Http.response
          ~content_type:"text/plain; version=0.0.4; charset=utf-8" r.r_metrics
      | "/health" -> json_response r.r_health
      | "/tenants" -> json_response r.r_tenants
      | "/events" -> handle_events t rq
      | _ ->
        json_response ~status:(404, "Not Found") "{\"error\":\"not found\"}"
    end

let serve_client t fd =
  (* A stuck client must not wedge the serving thread forever. *)
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0 with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0 with Unix.Unix_error _ -> ());
  let reply =
    match Http.read_head fd with
    | Ok raw -> handle t raw
    | Error msg ->
      json_response ~status:(400, "Bad Request")
        (Json.to_string (Json.Obj [ ("error", Json.Str msg) ]))
  in
  (try
     let b = Bytes.unsafe_of_string reply in
     let n = Bytes.length b in
     let off = ref 0 in
     while !off < n do
       off := !off + Unix.write fd b !off (n - !off)
     done
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t listener =
  let rec go () =
    match Unix.accept listener with
    | fd, _ ->
      serve_client t fd;
      go ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ ->
      (* Listener closed by [stop] (or a fatal socket error): exit. *)
      ()
  in
  go ()

let start ?(host = "127.0.0.1") t ~port =
  match t.listener with
  | Some _ -> Error "exporter already started"
  | None -> (
    try
      let addr = Unix.inet_addr_of_string host in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (addr, port));
         Unix.listen fd 16
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      let bound =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> port
      in
      t.listener <- Some fd;
      t.bound_port <- Some bound;
      t.thread <- Some (Thread.create (fun () -> accept_loop t fd) ());
      Events.log t.events ~kind:"exporter.start"
        [ ("port", Json.Num (float_of_int bound)) ];
      Ok bound
    with
    | Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "exporter: %s: %s" fn (Unix.error_message e))
    | Failure msg -> Error ("exporter: " ^ msg))

let stop t =
  match t.listener with
  | None -> ()
  | Some fd ->
    t.listener <- None;
    (* shutdown wakes a blocked accept on every platform we care about;
       close releases the port. *)
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    (match t.thread with
    | Some th ->
      Thread.join th;
      t.thread <- None
    | None -> ());
    Events.log t.events ~kind:"exporter.stop" []
