(** Per-domain span/event tracer with a bounded ring buffer.

    One tracer belongs to one domain (a campaign shard, a pool worker, or
    the main/merge domain) and is written without synchronization; the
    cross-domain picture is assembled at export time by {!Trace}. Recording
    appends into preallocated parallel arrays (no allocation beyond the
    name string the caller already holds), so spans are safe on paths hit
    millions of times per campaign; once the ring wraps, the oldest events
    are overwritten and the export drops any span half whose partner was
    evicted. A disabled tracer ({!null}, or any tracer created with
    [enabled:false]) short-circuits every record call on one branch.

    Timestamps are monotonic wall-clock microseconds: [Unix.gettimeofday]
    (never [Sys.time], which is process-wide CPU time and meaningless
    across domains), clamped to be non-decreasing per tracer. *)

type t

val create : ?capacity:int -> ?enabled:bool -> pid:int -> name:string -> unit -> t
(** [capacity] (default 16384) is the ring size in events; [pid] and
    [name] identify the emitting process lane in the exported Chrome
    trace. Raises [Invalid_argument] when [capacity < 1]. *)

val null : t
(** The shared disabled tracer: every record call is a no-op, every
    export is empty. *)

val enabled : t -> bool

val pid : t -> int

val begin_span : t -> string -> unit

val end_span : t -> string -> unit
(** Must close the most recent open {!begin_span} with the same name;
    mismatched halves are dropped at export, not errors at record. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [begin_span]/[end_span] around the thunk (also on raise). When the
    tracer is disabled this is a single branch around the thunk. *)

val instant : t -> string -> unit
(** A point event (Chrome phase [I]). *)

val counter : t -> string -> float -> unit
(** A sampled counter value (Chrome phase [C]). *)

val recorded : t -> int
(** Total events recorded since creation (including overwritten ones). *)

val dropped : t -> int
(** Events evicted by ring wrap-around: [max 0 (recorded - capacity)]. *)

val to_json_events : t -> Json.t list
(** This tracer's live window as Chrome [trace_event] objects: a
    [process_name] metadata event, then the events in chronological
    order with unmatched span halves (ring eviction, or an unclosed
    span) filtered out — the output always has balanced [B]/[E] pairs
    and non-decreasing timestamps. When the ring wrapped, a second
    metadata event named [trace_dropped] carries
    [args.dropped]/[args.recorded], so consumers ({!Trace_check}, the
    [stats] inspector) can flag the truncation. *)
