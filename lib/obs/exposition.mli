(** Prometheus text exposition format (version 0.0.4): renderer and a
    structural validator.

    The renderer takes a flat list of samples and groups them into
    families (one [# HELP] / [# TYPE] header per metric name, samples
    in first-seen order), escaping label values per the format. The
    validator is the CI-side checker: it accepts exactly what the
    renderer promises — well-formed comment lines, [TYPE] before the
    family's samples, valid metric/label names, parseable float values
    — and reports the first violating line. *)

type mtype = Counter | Gauge

type metric = {
  m_name : string;
  m_help : string;  (** empty string: no [# HELP] line *)
  m_type : mtype;
  m_labels : (string * string) list;
  m_value : float;
}

val metric :
  ?help:string -> ?labels:(string * string) list -> mtype -> string -> float
  -> metric

val sanitize_name : string -> string
(** Map an internal metric name (e.g. ["scheduler.execs_total"]) onto
    the exposition charset [[a-zA-Z_:][a-zA-Z0-9_:]*] by replacing every
    invalid byte with ['_'] (prefixing ['_'] when the first byte is
    invalid as a leading character). *)

val render : metric list -> string
(** Samples sharing a name form one family under the first sample's
    help/type; family order and within-family sample order follow the
    input. Non-finite values render as Prometheus ["NaN"]/["+Inf"]/
    ["-Inf"]. Metric and label {e names} must already be valid
    (see {!sanitize_name}); label {e values} may be arbitrary bytes. *)

type stats = {
  x_families : int;
  x_samples : int;
  x_names : string list;  (** family names, in order of appearance *)
}

val validate : string -> (stats, string) result
(** Structural check of an exposition payload; [Error] names the first
    offending line. Rejects duplicate [TYPE] declarations, samples
    preceding their family's [TYPE], malformed label syntax and
    unparseable values. *)
