(** The telemetry HTTP endpoint: one background thread serving
    [GET /metrics] (Prometheus text exposition), [GET /health] and
    [GET /tenants] (JSON), and [GET /events?since=N&level=L] (JSON,
    backed by an {!Events} log).

    Publication discipline — the property the determinism tests pin:
    the serving thread only ever reads an immutable, fully prerendered
    payload held in an [Atomic.t]. {!publish} renders the three
    documents on the caller's domain (the scheduler, at a barrier) and
    swaps the reference; a scrape in flight keeps the payload it
    already dereferenced. The exporter therefore takes no locks shared
    with campaign execution, and arming it cannot reorder, delay or
    observe anything the unarmed run would not — [/events] is the one
    live read, guarded by the event log's own mutex, which producers
    only touch at slice granularity. *)

type payload = {
  p_metrics : Exposition.metric list;
  p_health : Json.t;
  p_tenants : Json.t;
}

type t

val create : ?events:Events.t -> unit -> t
(** A fresh exporter serving the empty payload; [/events] serves from
    [events] (default {!Events.null}, i.e. always empty). *)

val publish : t -> payload -> unit
(** Render and atomically swap the served snapshot. Cheap enough to
    call at every scheduler barrier. *)

val start : ?host:string -> t -> port:int -> (int, string) result
(** Bind [host] (default ["127.0.0.1"]) on [port] — [0] picks an
    ephemeral port — and spawn the serving thread. Returns the actual
    bound port. Fails if already started or the bind is refused. *)

val port : t -> int option
(** The bound port once {!start} succeeded. *)

val stop : t -> unit
(** Close the listening socket and join the serving thread. Idempotent. *)
