type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type event = {
  ev_seq : int;
  ev_wall : float;
  ev_level : level;
  ev_kind : string;
  ev_fields : (string * Json.t) list;
}

(* Ring of the last [cap] accepted events, indexed by [seq mod cap]
   (sequence numbers start at 1, slot by [(seq - 1) mod cap]). *)
type t = {
  on : bool;
  cap : int;
  ring : event option array;
  min_level : level;
  mutable sink : (string -> unit) option;
  mutable next : int;  (* next sequence number to assign *)
  lock : Mutex.t;
}

let create ?(capacity = 1024) ?(min_level = Debug) ?sink () =
  if capacity < 1 then invalid_arg "Events.create: capacity must be >= 1";
  {
    on = true;
    cap = capacity;
    ring = Array.make capacity None;
    min_level;
    sink;
    next = 1;
    lock = Mutex.create ();
  }

let null =
  {
    on = false;
    cap = 1;
    ring = [| None |];
    min_level = Error;
    sink = None;
    next = 1;
    lock = Mutex.create ();
  }

let enabled t = t.on

let event_json ev =
  Json.Obj
    [ ("seq", Json.Num (float_of_int ev.ev_seq));
      ("wall", Json.Num ev.ev_wall);
      ("level", Json.Str (level_name ev.ev_level));
      ("kind", Json.Str ev.ev_kind);
      ("fields", Json.Obj ev.ev_fields)
    ]

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let log t ?(level = Info) ~kind fields =
  if t.on && level_rank level >= level_rank t.min_level then
    locked t (fun () ->
        let ev =
          {
            ev_seq = t.next;
            ev_wall = Unix.gettimeofday ();
            ev_level = level;
            ev_kind = kind;
            ev_fields = fields;
          }
        in
        t.ring.((t.next - 1) mod t.cap) <- Some ev;
        t.next <- t.next + 1;
        match t.sink with
        | Some write -> write (Json.to_string (event_json ev))
        | None -> ())

let seq t = locked t (fun () -> t.next - 1)

let dropped t = locked t (fun () -> max 0 (t.next - 1 - t.cap))

let since ?(min_level = Debug) t cursor =
  locked t (fun () ->
      let newest = t.next - 1 in
      let oldest = max 1 (t.next - t.cap) in
      let from = max oldest (cursor + 1) in
      let out = ref [] in
      for s = newest downto from do
        match t.ring.((s - 1) mod t.cap) with
        | Some ev when level_rank ev.ev_level >= level_rank min_level ->
          out := ev :: !out
        | _ -> ()
      done;
      !out)
