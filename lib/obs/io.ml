let write_atomic_with ?inject path writer =
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path ^ ".") ".tmp" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      (match inject with Some f -> f () | None -> ());
      let oc = open_out_bin tmp in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> writer oc);
      Sys.rename tmp path)

let write_atomic ?inject path data =
  write_atomic_with ?inject path (fun oc -> output_string oc data)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
