(* The ring is four parallel arrays indexed by [n mod cap]: phase byte,
   name, timestamp, counter value. Everything is preallocated at [create];
   a record call writes four slots and bumps [n]. *)

type t = {
  enabled : bool;
  pid : int;
  pname : string;
  cap : int;
  phs : Bytes.t;
  names : string array;
  tss : float array;
  vals : float array;
  mutable n : int;
  mutable last_ts : float;
}

let create ?(capacity = 16384) ?(enabled = true) ~pid ~name () =
  if capacity < 1 then invalid_arg "Tracer.create: capacity must be >= 1";
  {
    enabled;
    pid;
    pname = name;
    cap = capacity;
    phs = Bytes.make capacity ' ';
    names = Array.make capacity "";
    tss = Array.make capacity 0.0;
    vals = Array.make capacity 0.0;
    n = 0;
    last_ts = 0.0;
  }

let null = create ~capacity:1 ~enabled:false ~pid:(-1) ~name:"disabled" ()

let enabled t = t.enabled

let pid t = t.pid

(* gettimeofday can step backwards under clock adjustment; per-tracer
   clamping keeps every exported lane monotone. *)
let record t ph name v =
  if t.enabled then begin
    let ts = Unix.gettimeofday () *. 1e6 in
    let ts = if ts < t.last_ts then t.last_ts else ts in
    t.last_ts <- ts;
    let i = t.n mod t.cap in
    Bytes.unsafe_set t.phs i ph;
    t.names.(i) <- name;
    t.tss.(i) <- ts;
    t.vals.(i) <- v;
    t.n <- t.n + 1
  end

let begin_span t name = record t 'B' name 0.0

let end_span t name = record t 'E' name 0.0

let span t name f =
  if not t.enabled then f ()
  else begin
    begin_span t name;
    Fun.protect ~finally:(fun () -> end_span t name) f
  end

let instant t name = record t 'I' name 0.0

let counter t name v = record t 'C' name v

let recorded t = t.n

let dropped t = max 0 (t.n - t.cap)

(* The live window, oldest first. *)
let live_events t =
  let live = min t.n t.cap in
  let start = t.n - live in
  Array.init live (fun k ->
      let i = (start + k) mod t.cap in
      (Bytes.get t.phs i, t.names.(i), t.tss.(i), t.vals.(i)))

(* A wrapped ring can hold an E whose B was evicted, and an unclosed span
   leaves a dangling B; both would make the exported trace ill-formed.
   One stack pass keeps exactly the properly nested matched pairs. *)
let balance evs =
  let n = Array.length evs in
  let keep = Array.make n true in
  let stack = ref [] in
  Array.iteri
    (fun idx (ph, name, _, _) ->
      match ph with
      | 'B' -> stack := idx :: !stack
      | 'E' -> (
        match !stack with
        | top :: rest ->
          let _, bname, _, _ = evs.(top) in
          if String.equal bname name then stack := rest
          else keep.(idx) <- false
        | [] -> keep.(idx) <- false)
      | _ -> ())
    evs;
  List.iter (fun idx -> keep.(idx) <- false) !stack;
  keep

let to_json_events t =
  if not t.enabled then []
  else begin
    let evs = live_events t in
    let keep = balance evs in
    let meta =
      Json.Obj
        [
          ("name", Json.Str "process_name");
          ("ph", Json.Str "M");
          ("pid", Json.Num (float_of_int t.pid));
          ("tid", Json.Num 0.0);
          ("args", Json.Obj [ ("name", Json.Str t.pname) ]);
        ]
    in
    let base name ph ts =
      [
        ("name", Json.Str name);
        ("ph", Json.Str ph);
        ("pid", Json.Num (float_of_int t.pid));
        ("tid", Json.Num 0.0);
        ("ts", Json.Num ts);
      ]
    in
    (* Ring truncation is part of the export: downstream checkers
       ([stats --check]/[--strict]) can only warn about evicted events
       if the trace itself says they existed. Emitted only when events
       were actually dropped, so untruncated traces are byte-identical
       to what older exports produced. *)
    let drop_meta =
      if t.n <= t.cap then []
      else
        [ Json.Obj
            [
              ("name", Json.Str "trace_dropped");
              ("ph", Json.Str "M");
              ("pid", Json.Num (float_of_int t.pid));
              ("tid", Json.Num 0.0);
              ( "args",
                Json.Obj
                  [
                    ("dropped", Json.Num (float_of_int (t.n - t.cap)));
                    ("recorded", Json.Num (float_of_int t.n));
                  ] );
            ]
        ]
    in
    let events = ref [] in
    for idx = Array.length evs - 1 downto 0 do
      if keep.(idx) then begin
        let ph, name, ts, v = evs.(idx) in
        let ev =
          match ph with
          | 'B' -> Json.Obj (base name "B" ts)
          | 'E' -> Json.Obj (base name "E" ts)
          | 'I' -> Json.Obj (base name "I" ts @ [ ("s", Json.Str "t") ])
          | 'C' ->
            Json.Obj
              (base name "C" ts @ [ ("args", Json.Obj [ ("value", Json.Num v) ]) ])
          | _ -> assert false
        in
        events := ev :: !events
      end
    done;
    (meta :: drop_meta) @ !events
  end
