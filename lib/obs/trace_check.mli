(** Structural validation and span aggregation for Chrome traces.

    Used by the [snowplow stats] inspector, the CI telemetry smoke-run
    and the unit tests: {!validate} accepts exactly the well-formedness
    contract {!Tracer.to_json_events} promises — per (pid, tid) lane,
    timestamps are non-decreasing and [B]/[E] events form balanced,
    properly nested, name-matched pairs — and aggregates span durations
    and counter samples while checking it. *)

type span_stat = {
  span : string;
  spans : int;  (** completed B/E pairs *)
  total_us : float;
  max_us : float;
}

type counter_stat = {
  counter : string;
  samples : int;
  last : float;
}

type summary = {
  events : int;  (** excluding metadata ([M]) events *)
  pids : int list;  (** sorted *)
  span_stats : span_stat list;  (** sorted by [total_us], largest first *)
  counter_stats : counter_stat list;  (** sorted by name *)
  instants : (string * int) list;  (** sorted by name *)
  dropped : (int * int) list;
      (** ring-evicted event counts per pid, from [trace_dropped]
          metadata (see {!Tracer.to_json_events}); sorted by pid, pids
          with no drops omitted *)
}

val total_dropped : summary -> int

val validate : Json.t -> (summary, string) result
(** Check a parsed trace file: the top level must carry a [traceEvents]
    array; every event needs [name]/[ph]/[pid]/[tid] (and [ts] unless
    it is metadata); phases must be one of [B E I C M]; and every
    (pid, tid) lane must be monotone and span-balanced. The first
    violation is reported. *)

val has_span : summary -> string -> bool

val has_counter : summary -> string -> bool
