(** Minimal JSON emitter and parser for telemetry artifacts.

    The telemetry subsystem writes Chrome [trace_event] files and JSONL
    time-series, and the [snowplow stats] inspector reads them back; this
    module is the (dependency-free) serialization layer for both. Two
    properties are load-bearing and pinned by tests:

    - strings round-trip byte-exactly: control characters are emitted as
      [\uXXXX] escapes, quotes and backslashes are escaped, and all other
      bytes (including non-ASCII) pass through verbatim;
    - finite floats round-trip exactly: {!num_to_string} emits the
      shortest of [%.15g]/[%.17g] that re-parses to the same float, and
      integral values within the exactly-representable range are emitted
      without an exponent or fraction.

    Non-finite floats have no JSON representation and are emitted as
    [null]. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val num_to_string : float -> string
(** Exact-round-trip float formatting (["null"] for non-finite values). *)

val to_string : t -> string
(** Compact (no whitespace) serialization; object fields keep list order. *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> (t, string) result
(** Strict parse of one JSON value (surrounding whitespace allowed).
    [\uXXXX] escapes are decoded to UTF-8 (surrogate pairs supported). *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the first binding of [k]; [None] otherwise. *)

val num_opt : t -> float option

val str_opt : t -> string option

val arr_opt : t -> t list option

val equal : t -> t -> bool
(** Structural equality; [Num] compared with [Float.equal] (so [nan]
    equals [nan], and [0.] differs from [-0.]). *)

(** {1 Decoding}

    Exception-based field extractors for reading structured documents
    (campaign snapshots). Decoders compose as plain function calls and a
    top-level {!Decode.run} converts the first failure into a [result],
    carrying which field was malformed. *)
module Decode : sig
  exception Error of string

  val error : ('a, unit, string, 'b) format4 -> 'a
  (** Raise {!Error} with a formatted message. *)

  val field : string -> t -> t
  (** Required field of an object; raises {!Error} if absent. *)

  val num_field : string -> t -> float

  val int_field : string -> t -> int
  (** Number field that must be integral and within the float-exact range. *)

  val str_field : string -> t -> string

  val bool_field : string -> t -> bool

  val arr_field : string -> t -> t list

  val obj_field : string -> t -> t
  (** Required field that must itself be an object (returned as-is). *)

  val int64_to_json : int64 -> t
  (** Encode an int64 as a 16-digit hex [Str] — int64 values (RNG states)
      exceed the float-exact integer range, so they cannot travel as
      [Num]. *)

  val int64_field : string -> t -> int64
  (** Decode a field written by {!int64_to_json}. *)

  val run : (unit -> 'a) -> ('a, string) result
  (** Run a decoder, converting {!Error} into [Error msg]. *)
end
