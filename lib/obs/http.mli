(** Minimal HTTP/1.1 on [Unix] sockets — just enough for a local
    telemetry endpoint and its scrapers. No keep-alive (every response
    closes the connection), no chunked encoding, no TLS.

    The request parser is a pure function over the raw head bytes so
    hostile inputs can be unit-tested without sockets; {!read_head}
    handles the socket side (partial reads, size cap). *)

type request = {
  rq_method : string;
  rq_path : string;  (** percent-decoded path, query stripped *)
  rq_query : (string * string) list;  (** decoded key/value pairs *)
  rq_version : string;  (** ["HTTP/1.0"] or ["HTTP/1.1"] *)
  rq_headers : (string * string) list;  (** names lowercased, in order *)
}

val parse_request : string -> (request, string) result
(** Parse a request head (request line + header lines, with or without
    the terminating blank line). Rejects malformed request lines,
    non-HTTP versions, header lines without a colon, and control bytes
    embedded in the target. *)

val header : request -> string -> string option
(** Case-insensitive header lookup (first match). *)

val query_int : request -> string -> int option

val percent_decode : string -> string
(** Decode [%XX] escapes (and [+] as space); invalid escapes pass
    through verbatim. *)

val read_head :
  ?max_bytes:int -> Unix.file_descr -> (string, string) result
(** Read from [fd] until the [CRLFCRLF] head terminator, tolerating
    arbitrarily fragmented reads. Fails on EOF before the terminator,
    or when [max_bytes] (default 8192) arrive without one. Any body
    bytes after the terminator are discarded (the exporter serves GET
    only). *)

val response :
  ?status:int * string ->
  ?content_type:string ->
  ?extra_headers:(string * string) list ->
  string ->
  string
(** Render a full response (default status [200 OK], content type
    [text/plain; charset=utf-8]) with [Content-Length] and
    [Connection: close]. *)

val get :
  ?timeout_s:float ->
  host:string ->
  port:int ->
  string ->
  (int * (string * string) list * string, string) result
(** Blocking one-shot client: [GET path] against [host:port], returning
    (status, lowercased headers, body). The body is read to
    [Content-Length] when present, else to EOF. [timeout_s] (default 5)
    bounds both connect and read via [SO_RCVTIMEO]/[SO_SNDTIMEO]. *)
